/**
 * @file
 * Section 5.2.2 (second half): hyperparameter ablations. (a) ML model
 * size: one hidden layer vs the default two vs a bigger three-layer
 * model. (b) Window length k for the throughput distributions: the paper
 * found k in {100, 200, 400} makes little difference.
 *
 * The window-k sweep rebuilds features, so it uses reduced dataset sizes
 * (env-tunable via CONCORDE_K_SWEEP_SAMPLES, default 6000).
 */

#include <cstdlib>

#include "bench_util.hh"

using namespace concorde;

namespace
{

TrainedModel
cachedTrain(const Dataset &data, const std::string &name,
            const TrainConfig &config)
{
    const std::string path = artifacts::dir() + "/model_" + name + "_"
        + std::to_string(data.size()) + "x"
        + std::to_string(config.epochs) + ".bin";
    if (fileExists(path))
        return TrainedModel::load(path);
    TrainedModel model =
        trainMlp(data.features, data.labels, data.dim, config);
    model.save(path);
    return model;
}

Dataset
cachedKDataset(const std::string &name, int window_k, size_t samples,
               uint64_t seed)
{
    const std::string path = artifacts::dir() + "/" + name + "_"
        + std::to_string(samples) + ".bin";
    if (fileExists(path))
        return Dataset::load(path);
    DatasetConfig config;
    config.numSamples = samples;
    config.regionChunks = artifacts::kShortRegionChunks;
    config.seed = seed;
    config.features = artifacts::featureConfig();
    config.features.windowK = window_k;
    Dataset data = buildDataset(config);
    data.save(path);
    return data;
}

} // anonymous namespace

int
main()
{
    std::printf("=== Section 5.2.2: hyperparameter ablations ===\n");

    // ---- (a) model size (on half the main set, to bound retrain cost)
    {
        const Dataset &full_train = artifacts::mainTrain();
        std::vector<size_t> half_idx(full_train.size() / 2);
        for (size_t i = 0; i < half_idx.size(); ++i)
            half_idx[i] = i;
        const Dataset train = full_train.subset(half_idx);
        const Dataset &test = artifacts::mainTest();
        struct Variant
        {
            const char *name;
            std::vector<size_t> hidden;
        };
        const std::vector<Variant> variants = {
            {"one hidden layer (256)", {256}},
            {"default (192, 96)", {192, 96}},
            {"bigger (384, 192, 96)", {384, 192, 96}},
        };
        std::printf("\n  model-size ablation (paper: 1x256 worse, "
                    "3-layer slightly better):\n");
        for (const auto &variant : variants) {
            TrainConfig config = artifacts::trainConfig();
            config.hiddenSizes = variant.hidden;
            const TrainedModel model = cachedTrain(
                train, std::string("hidden_")
                    + std::to_string(variant.hidden.size()) + "_"
                    + std::to_string(variant.hidden[0]), config);
            const auto stats = benchutil::summarize(
                benchutil::relativeErrors(model, test));
            std::printf("    %-26s avg err %5.2f%%  >10%%: %5.2f%%\n",
                        variant.name, 100 * stats.mean,
                        100 * stats.fracAbove10pct);
        }
    }

    // ---- (b) window length k ----
    {
        const char *env = std::getenv("CONCORDE_K_SWEEP_SAMPLES");
        const size_t samples =
            env && *env ? static_cast<size_t>(std::atoll(env)) : 3000;
        std::printf("\n  window-length sweep (%zu-sample datasets; "
                    "paper: k in {100,200,400} all similar):\n", samples);
        for (int k : {100, 200, 400}) {
            const Dataset train = cachedKDataset(
                "ktrain_" + std::to_string(k), k, samples, 1700 + k);
            const Dataset test = cachedKDataset(
                "ktest_" + std::to_string(k), k, samples / 6, 2900 + k);
            TrainConfig config = artifacts::trainConfig();
            const TrainedModel model = cachedTrain(
                train, "ksweep_" + std::to_string(k), config);
            const auto stats = benchutil::summarize(
                benchutil::relativeErrors(model, test));
            std::printf("    k = %-4d  avg err %5.2f%%  >10%%: %5.2f%%\n",
                        k, 100 * stats.mean, 100 * stats.fracAbove10pct);
        }
    }
    return 0;
}
