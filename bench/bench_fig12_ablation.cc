/**
 * @file
 * Figure 12 (Section 5.2.2): ablation of Concorde's design components --
 * the pure analytical min-bound (no ML), the base model (per-resource
 * distributions + mispredict rate), base + pipeline-stall features, and
 * the full model with latency distributions.
 */

#include "analytical/feature_provider.hh"
#include "bench_util.hh"
#include "common/thread_pool.hh"

using namespace concorde;

int
main()
{
    const Dataset &test = artifacts::mainTest();

    std::printf("=== Figure 12: ablation of design components ===\n");

    // Pure analytical minimum bound (no ML), on a subsample for speed.
    const size_t bound_n = std::min<size_t>(test.size(), 600);
    std::vector<double> bound_errors(bound_n);
    parallelFor(bound_n, [&](size_t i) {
        FeatureProvider provider(test.meta[i].region,
                                 artifacts::featureConfig());
        const double bound =
            provider.cpiMinBound(test.meta[i].params);
        bound_errors[i] = std::abs(bound - test.labels[i])
            / std::max(test.labels[i], 1e-6f);
    });
    benchutil::printErrorRow("min bound (analytical, no ML)",
                             benchutil::summarize(bound_errors));

    const auto base_errors = benchutil::relativeErrors(
        artifacts::ablationModel("base"), test);
    benchutil::printErrorRow("base (dists + mispredict rate)",
                             benchutil::summarize(base_errors));

    const auto branch_errors = benchutil::relativeErrors(
        artifacts::ablationModel("base_branch"), test);
    benchutil::printErrorRow("base + branch/stall features",
                             benchutil::summarize(branch_errors));

    const auto full_errors =
        benchutil::relativeErrors(artifacts::fullModel(), test);
    benchutil::printErrorRow("full (+ latency distributions)",
                             benchutil::summarize(full_errors));

    benchutil::printCdf("error CDF, min bound", bound_errors);
    benchutil::printCdf("error CDF, base", base_errors);
    benchutil::printCdf("error CDF, base+branch", branch_errors);
    benchutil::printCdf("error CDF, full", full_errors);
    std::printf("  paper: 65%% -> 3.32%% -> 2.4%% -> 2.03%% average "
                "error\n");
    return 0;
}
