/**
 * @file
 * Tests for the network serve front end: wire-format round trips,
 * malformed-frame handling (connection-fatal), routine failures as
 * statuses (unknown model, timeout, overload, shutdown), and the
 * bitwise-identity guarantee between socket-path predictions and the
 * in-process predict() API, including under concurrent clients.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "core/concorde.hh"
#include "core/model_artifact.hh"
#include "ml/mlp.hh"
#include "serve/net_client.hh"
#include "serve/net_server.hh"
#include "serve/prediction_service.hh"
#include "serve/wire.hh"

namespace concorde
{
namespace
{

using namespace concorde::serve;

/** Tiny untrained predictor over a shrunken feature space. */
ConcordePredictor
tinyPredictor(uint64_t seed)
{
    FeatureConfig cfg;
    cfg.numPercentiles = 5;
    cfg.robSweep = {4, 64};
    cfg.latencyRobSizes = {4, 64};
    const FeatureLayout layout(cfg);
    Mlp net({layout.dim(), 16, 1}, seed);
    std::vector<float> mean(layout.dim(), 0.0f);
    std::vector<float> stdev(layout.dim(), 1.0f);
    TrainedModel model(std::move(net), std::move(mean), std::move(stdev),
                       {});
    return ConcordePredictor(std::move(model), cfg);
}

BatchingConfig
uniformBatching(size_t max_batch, std::chrono::microseconds max_age)
{
    BatchingConfig cfg;
    for (auto &policy : cfg.classes)
        policy = {max_batch, max_age};
    return cfg;
}

PredictRequest
makeRequest(const std::string &model, const RegionSpec &region,
            const UarchParams &params)
{
    PredictRequest request;
    request.model = model;
    request.region = region;
    request.params = params;
    return request;
}

// ---- wire format ----

TEST(Wire, RequestRoundTripPreservesEveryField)
{
    Rng rng(7);
    wire::RequestFrame frame;
    frame.requestId = 0x1122334455667788ull;
    frame.request.model = "some-model";
    frame.request.region = RegionSpec{3, 2, 12345678901ull, 16};
    frame.request.params = UarchParams::sampleRandom(rng);
    frame.request.cls = RequestClass::Bulk;
    frame.request.timeout = std::chrono::microseconds(2500);

    std::vector<uint8_t> bytes;
    wire::encodeRequest(frame, bytes);
    ASSERT_GE(bytes.size(), wire::kLengthPrefixBytes);

    wire::RequestFrame decoded;
    ASSERT_TRUE(wire::decodeRequest(bytes.data() + wire::kLengthPrefixBytes,
                                    bytes.size() - wire::kLengthPrefixBytes,
                                    decoded));
    EXPECT_EQ(decoded.requestId, frame.requestId);
    EXPECT_EQ(decoded.request.model, frame.request.model);
    EXPECT_EQ(decoded.request.region.programId,
              frame.request.region.programId);
    EXPECT_EQ(decoded.request.region.traceId, frame.request.region.traceId);
    EXPECT_EQ(decoded.request.region.startChunk,
              frame.request.region.startChunk);
    EXPECT_EQ(decoded.request.region.numChunks,
              frame.request.region.numChunks);
    EXPECT_EQ(decoded.request.cls, frame.request.cls);
    EXPECT_EQ(decoded.request.timeout, frame.request.timeout);
    // Full params identity: every axis survives, so cache keys match.
    EXPECT_TRUE(decoded.request.params == frame.request.params);
    EXPECT_EQ(decoded.request.params.hashKey(),
              frame.request.params.hashKey());
}

TEST(Wire, ResponseRoundTripPreservesBits)
{
    wire::ResponseFrame frame;
    frame.requestId = 42;
    frame.response.status = ServeStatus::INTERNAL_ERROR;
    frame.response.cpi = 0.1 + 0.2;    // not exactly representable
    frame.response.message = "model exploded";

    std::vector<uint8_t> bytes;
    wire::encodeResponse(frame, bytes);
    wire::ResponseFrame decoded;
    ASSERT_TRUE(
        wire::decodeResponse(bytes.data() + wire::kLengthPrefixBytes,
                             bytes.size() - wire::kLengthPrefixBytes,
                             decoded));
    EXPECT_EQ(decoded.requestId, 42u);
    EXPECT_EQ(decoded.response.status, ServeStatus::INTERNAL_ERROR);
    // Bitwise, not approximate: the f64 travels as raw IEEE bits.
    EXPECT_EQ(decoded.response.cpi, frame.response.cpi);
    EXPECT_EQ(decoded.response.message, "model exploded");
}

TEST(Wire, DecodeRejectsMalformedPayloads)
{
    wire::RequestFrame frame;
    frame.requestId = 9;
    frame.request = makeRequest("m", RegionSpec{0, 0, 0, 1},
                                UarchParams::armN1());
    std::vector<uint8_t> bytes;
    wire::encodeRequest(frame, bytes);
    const uint8_t *payload = bytes.data() + wire::kLengthPrefixBytes;
    const size_t payloadLen = bytes.size() - wire::kLengthPrefixBytes;

    wire::RequestFrame out;
    // Truncation anywhere in the payload is malformed.
    for (const size_t cut : {size_t(0), size_t(3), size_t(7),
                             payloadLen / 2, payloadLen - 1})
        EXPECT_FALSE(wire::decodeRequest(payload, cut, out)) << cut;
    // Trailing garbage is malformed too.
    std::vector<uint8_t> padded(payload, payload + payloadLen);
    padded.push_back(0);
    EXPECT_FALSE(wire::decodeRequest(padded.data(), padded.size(), out));
    // Corrupt magic.
    std::vector<uint8_t> badMagic(payload, payload + payloadLen);
    badMagic[0] ^= 0xff;
    EXPECT_FALSE(
        wire::decodeRequest(badMagic.data(), badMagic.size(), out));
    // Unknown version.
    std::vector<uint8_t> badVersion(payload, payload + payloadLen);
    badVersion[4] = 99;
    EXPECT_FALSE(
        wire::decodeRequest(badVersion.data(), badVersion.size(), out));
    // A response frame is not a request frame.
    wire::ResponseFrame respFrame;
    respFrame.requestId = 9;
    std::vector<uint8_t> respBytes;
    wire::encodeResponse(respFrame, respBytes);
    EXPECT_FALSE(wire::decodeRequest(
        respBytes.data() + wire::kLengthPrefixBytes,
        respBytes.size() - wire::kLengthPrefixBytes, out));
    // The original payload still decodes (no state leaked across calls).
    EXPECT_TRUE(wire::decodeRequest(payload, payloadLen, out));
}

// ---- server behavior over real sockets ----

/** Service with one registered model plus a listening server. */
struct ServerFixture
{
    explicit ServerFixture(ServeConfig cfg = ServeConfig{})
        : service(std::move(cfg)), server(service)
    {
        service.registry().add("tiny", tinyPredictor(77));
        server.start();
    }
    ~ServerFixture() { server.stop(); }

    PredictionService service;
    NetServer server;
};

ServeConfig
fastServeConfig()
{
    ServeConfig cfg;
    cfg.batching = uniformBatching(16, std::chrono::microseconds(100));
    return cfg;
}

TEST(NetServe, PredictOverSocket)
{
    ServerFixture fx(fastServeConfig());
    NetClient client("127.0.0.1", fx.server.port());
    const PredictResponse response = client.predict(
        makeRequest("tiny", RegionSpec{0, 0, 0, 1}, UarchParams::armN1()));
    EXPECT_EQ(response.status, ServeStatus::OK);
    EXPECT_GT(response.cpi, 0.0);
    const NetServerStats stats = fx.server.stats();
    EXPECT_EQ(stats.connectionsAccepted, 1u);
    EXPECT_EQ(stats.framesIn, 1u);
    EXPECT_EQ(stats.framesOut, 1u);
    EXPECT_EQ(stats.protocolErrors, 0u);
}

TEST(NetServe, UnknownModelIsAStatusNotAClose)
{
    ServerFixture fx(fastServeConfig());
    NetClient client("127.0.0.1", fx.server.port());
    const PredictResponse response = client.predict(
        makeRequest("missing", RegionSpec{0, 0, 0, 1},
                    UarchParams::armN1()));
    EXPECT_EQ(response.status, ServeStatus::UNKNOWN_MODEL);
    // The connection survives a routine failure.
    const PredictResponse ok = client.predict(
        makeRequest("tiny", RegionSpec{0, 0, 0, 1}, UarchParams::armN1()));
    EXPECT_EQ(ok.status, ServeStatus::OK);
}

TEST(NetServe, MalformedFrameClosesConnection)
{
    ServerFixture fx(fastServeConfig());
    NetClient client("127.0.0.1", fx.server.port());
    // Valid length prefix, garbage payload (bad magic).
    const uint8_t junk[] = {8, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef,
                            0,  0, 0, 0};
    client.sendRaw(junk, sizeof(junk));
    wire::ResponseFrame reply;
    EXPECT_FALSE(client.recvResponse(reply));   // server closed
    // Poll briefly: close accounting happens on the loop thread.
    for (int i = 0; i < 100 && fx.server.stats().protocolErrors == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const NetServerStats stats = fx.server.stats();
    EXPECT_EQ(stats.protocolErrors, 1u);
    EXPECT_EQ(stats.framesIn, 0u);
    // The server keeps serving fresh connections afterwards.
    NetClient second("127.0.0.1", fx.server.port());
    EXPECT_EQ(second
                  .predict(makeRequest("tiny", RegionSpec{0, 0, 0, 1},
                                       UarchParams::armN1()))
                  .status,
              ServeStatus::OK);
}

TEST(NetServe, OversizedLengthPrefixClosesConnection)
{
    ServerFixture fx(fastServeConfig());
    NetClient client("127.0.0.1", fx.server.port());
    const uint32_t huge = wire::kMaxPayloadBytes + 1;
    uint8_t prefix[4];
    std::memcpy(prefix, &huge, 4);
    client.sendRaw(prefix, sizeof(prefix));
    wire::ResponseFrame reply;
    EXPECT_FALSE(client.recvResponse(reply));
}

TEST(NetServe, QueueTimeoutSurfacesOverSocket)
{
    ServeConfig cfg;
    // Batching age far beyond the request timeout: the request must
    // expire in the queue.
    cfg.batching = uniformBatching(100, std::chrono::seconds(30));
    ServerFixture fx(std::move(cfg));
    NetClient client("127.0.0.1", fx.server.port());
    PredictRequest request = makeRequest("tiny", RegionSpec{0, 0, 0, 1},
                                         UarchParams::armN1());
    request.timeout = std::chrono::milliseconds(2);
    const PredictResponse response = client.predict(request);
    EXPECT_EQ(response.status, ServeStatus::TIMEOUT);
}

TEST(NetServe, AdmissionControlRejectsBurstOverload)
{
    ServeConfig cfg;
    cfg.batching = uniformBatching(100, std::chrono::milliseconds(100));
    cfg.batching.maxInFlightPerKey = 1;
    ServerFixture fx(std::move(cfg));
    NetClient client("127.0.0.1", fx.server.port());
    // One pipelined burst: the first request takes the only admission
    // slot and parks until the 100ms age flush; the rest must bounce.
    const std::vector<PredictRequest> burst(
        3, makeRequest("tiny", RegionSpec{0, 0, 0, 1},
                       UarchParams::armN1()));
    const std::vector<PredictResponse> responses =
        client.predictBurst(burst);
    size_t ok = 0, overloaded = 0;
    for (const auto &response : responses) {
        if (response.status == ServeStatus::OK)
            ++ok;
        else if (response.status == ServeStatus::OVERLOADED)
            ++overloaded;
    }
    EXPECT_EQ(ok, 1u);
    EXPECT_EQ(overloaded, 2u);
}

TEST(NetServe, ShutdownServiceAnswersWithShutdownStatus)
{
    ServerFixture fx(fastServeConfig());
    NetClient client("127.0.0.1", fx.server.port());
    fx.service.shutdown();
    const PredictResponse response = client.predict(
        makeRequest("tiny", RegionSpec{0, 0, 0, 1}, UarchParams::armN1()));
    EXPECT_EQ(response.status, ServeStatus::SHUTDOWN);
}

TEST(NetServe, SocketPredictionsAreBitwiseIdenticalToInProcess)
{
    ServerFixture fx(fastServeConfig());
    const RegionSpec region{0, 0, 0, 1};

    Rng rng(55);
    std::vector<UarchParams> points;
    std::vector<double> expected;
    for (int i = 0; i < 24; ++i) {
        points.push_back(UarchParams::sampleRandom(rng));
        // In-process reference answer (also primes the cache, which is
        // exactly what the warm path does in production).
        expected.push_back(fx.service.predict("tiny", region, points[i]));
    }

    std::vector<PredictRequest> requests;
    for (const auto &point : points)
        requests.push_back(makeRequest("tiny", region, point));

    // Several concurrent clients replay the same points; every socket
    // answer must match the in-process double bit for bit.
    constexpr int kClients = 3;
    std::atomic<int> mismatches{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&]() {
            try {
                NetClient client("127.0.0.1", fx.server.port());
                const std::vector<PredictResponse> responses =
                    client.predictBurst(requests);
                for (size_t i = 0; i < responses.size(); ++i) {
                    if (responses[i].status != ServeStatus::OK ||
                        responses[i].cpi != expected[i])
                        ++mismatches;
                }
            } catch (const std::exception &) {
                ++failures;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(mismatches.load(), 0);
    const NetServerStats stats = fx.server.stats();
    EXPECT_EQ(stats.framesIn,
              static_cast<uint64_t>(kClients * points.size()));
    EXPECT_EQ(stats.framesOut, stats.framesIn);
}

TEST(NetServe, InterleavedClassesOverOneConnection)
{
    ServerFixture fx(fastServeConfig());
    NetClient client("127.0.0.1", fx.server.port());
    std::vector<PredictRequest> burst;
    Rng rng(91);
    for (int i = 0; i < 16; ++i) {
        PredictRequest request = makeRequest(
            "tiny", RegionSpec{0, 0, static_cast<uint64_t>(8 * (i % 2)), 1},
            UarchParams::sampleRandom(rng));
        request.cls =
            (i % 2) ? RequestClass::Bulk : RequestClass::Interactive;
        burst.push_back(std::move(request));
    }
    const std::vector<PredictResponse> responses =
        client.predictBurst(burst);
    for (const auto &response : responses)
        EXPECT_EQ(response.status, ServeStatus::OK);
    const ServeStats stats = fx.service.stats();
    EXPECT_EQ(stats.queue.submittedByClass[static_cast<size_t>(
                  RequestClass::Interactive)], 8u);
    EXPECT_EQ(stats.queue.submittedByClass[static_cast<size_t>(
                  RequestClass::Bulk)], 8u);
}

// ---- peer disconnects must never raise SIGPIPE ----

TEST(NetServe, ClientDisconnectMidBurstDoesNotKillServer)
{
    ServerFixture fx(fastServeConfig());
    {
        NetClient client("127.0.0.1", fx.server.port());
        // Pipeline a burst of valid requests and vanish without reading
        // a single response: the server's response flush then writes
        // into a closed socket, which without MSG_NOSIGNAL raises
        // SIGPIPE and kills the whole process (this one, in this test).
        std::vector<uint8_t> bytes;
        for (int i = 0; i < 64; ++i) {
            wire::RequestFrame frame;
            frame.requestId = static_cast<uint64_t>(i);
            frame.request = makeRequest("tiny", RegionSpec{0, 0, 0, 1},
                                        UarchParams::armN1());
            bytes.clear();
            wire::encodeRequest(frame, bytes);
            client.sendRaw(bytes.data(), bytes.size());
        }
    }   // ~NetClient closes the socket with responses still in flight
    // Let the loop thread drain the burst into the dead socket, then
    // prove the server survived and still serves fresh connections.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    NetClient second("127.0.0.1", fx.server.port());
    EXPECT_EQ(second
                  .predict(makeRequest("tiny", RegionSpec{0, 0, 0, 1},
                                       UarchParams::armN1()))
                  .status,
              ServeStatus::OK);
}

TEST(NetServe, ClientWriteAfterServerCloseThrowsInsteadOfSigpipe)
{
    ServerFixture fx(fastServeConfig());
    NetClient client("127.0.0.1", fx.server.port());
    // Provoke a server-side close (malformed frame is connection-fatal).
    const uint8_t junk[] = {8, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef,
                            0,  0, 0, 0};
    client.sendRaw(junk, sizeof(junk));
    wire::ResponseFrame reply;
    EXPECT_FALSE(client.recvResponse(reply));   // server closed on us
    // Keep writing into the closed connection: once the RST lands this
    // must surface as a throwable error (EPIPE), never process death.
    bool threw = false;
    for (int i = 0; i < 1000 && !threw; ++i) {
        try {
            client.sendRaw(junk, sizeof(junk));
        } catch (const std::runtime_error &) {
            threw = true;
        }
    }
    EXPECT_TRUE(threw);
}

// ---- protocol v2: uncertainty fields and version negotiation ----

TEST(Wire, V2ResponseCarriesUncertaintyBitsExactly)
{
    wire::ResponseFrame frame;
    frame.requestId = 7;
    frame.version = 2;
    frame.response.status = ServeStatus::OK;
    frame.response.cpi = 1.0 / 3.0;
    frame.response.lo = 0.1 + 0.2;      // not exactly representable
    frame.response.hi = 2.0 / 3.0;
    frame.response.calibrated = true;
    frame.response.ood = true;
    frame.response.fallback = true;

    std::vector<uint8_t> bytes;
    wire::encodeResponse(frame, bytes);
    wire::ResponseFrame decoded;
    ASSERT_TRUE(
        wire::decodeResponse(bytes.data() + wire::kLengthPrefixBytes,
                             bytes.size() - wire::kLengthPrefixBytes,
                             decoded));
    EXPECT_EQ(decoded.version, 2);
    EXPECT_EQ(decoded.response.cpi, frame.response.cpi);
    // The interval travels as raw IEEE bits, like cpi.
    EXPECT_EQ(decoded.response.lo, frame.response.lo);
    EXPECT_EQ(decoded.response.hi, frame.response.hi);
    EXPECT_TRUE(decoded.response.calibrated);
    EXPECT_TRUE(decoded.response.ood);
    EXPECT_TRUE(decoded.response.fallback);
}

TEST(Wire, V1ResponseDowngradesToPointOnly)
{
    wire::ResponseFrame frame;
    frame.requestId = 8;
    frame.version = 1;      // a v1 client asked; answer at v1
    frame.response.cpi = 2.25;
    frame.response.lo = 2.0;
    frame.response.hi = 2.5;
    frame.response.calibrated = true;
    frame.response.ood = true;

    std::vector<uint8_t> bytes;
    wire::encodeResponse(frame, bytes);
    wire::ResponseFrame decoded;
    ASSERT_TRUE(
        wire::decodeResponse(bytes.data() + wire::kLengthPrefixBytes,
                             bytes.size() - wire::kLengthPrefixBytes,
                             decoded));
    // The v1 body has no flags or interval: the point survives, the
    // uncertainty fields come back at their defaults.
    EXPECT_EQ(decoded.version, 1);
    EXPECT_EQ(decoded.response.cpi, 2.25);
    EXPECT_FALSE(decoded.response.calibrated);
    EXPECT_FALSE(decoded.response.ood);
    EXPECT_FALSE(decoded.response.fallback);
    EXPECT_EQ(decoded.response.lo, 0.0);
    EXPECT_EQ(decoded.response.hi, 0.0);
}

TEST(Wire, ReservedResponseFlagBitsAreMalformed)
{
    wire::ResponseFrame frame;
    frame.requestId = 9;
    frame.response.status = ServeStatus::OK;
    frame.response.cpi = 1.5;
    std::vector<uint8_t> bytes;
    wire::encodeResponse(frame, bytes);
    // Header is 16 bytes (magic u32, version u8, type u8, reserved u16,
    // requestId u64); the v2 flags byte follows the status byte.
    const size_t flags_off = wire::kLengthPrefixBytes + 16 + 1;
    std::vector<uint8_t> tampered = bytes;
    tampered[flags_off] |= 0x80;    // a reserved bit
    wire::ResponseFrame out;
    EXPECT_FALSE(
        wire::decodeResponse(tampered.data() + wire::kLengthPrefixBytes,
                             tampered.size() - wire::kLengthPrefixBytes,
                             out));
    // Untampered still decodes: the offset above hit the right byte.
    EXPECT_TRUE(
        wire::decodeResponse(bytes.data() + wire::kLengthPrefixBytes,
                             bytes.size() - wire::kLengthPrefixBytes,
                             out));
}

TEST(Wire, DecodeRequestExDistinguishesUnsupportedVersion)
{
    wire::RequestFrame frame;
    frame.requestId = 0xfeedULL;
    frame.request = makeRequest("m", RegionSpec{0, 0, 0, 1},
                                UarchParams::armN1());
    std::vector<uint8_t> bytes;
    wire::encodeRequest(frame, bytes);
    const uint8_t *payload = bytes.data() + wire::kLengthPrefixBytes;
    const size_t len = bytes.size() - wire::kLengthPrefixBytes;

    wire::RequestFrame out;
    EXPECT_EQ(wire::decodeRequestEx(payload, len, out),
              wire::DecodeResult::Ok);

    std::vector<uint8_t> future(payload, payload + len);
    future[4] = 99;     // version byte
    EXPECT_EQ(wire::decodeRequestEx(future.data(), future.size(), out),
              wire::DecodeResult::UnsupportedVersion);
    // The id survives, so the server can address its diagnostic reply.
    EXPECT_EQ(out.requestId, 0xfeedULL);

    std::vector<uint8_t> garbage(payload, payload + len);
    garbage[0] ^= 0xff;     // magic
    EXPECT_EQ(wire::decodeRequestEx(garbage.data(), garbage.size(), out),
              wire::DecodeResult::Malformed);
}

TEST(NetServe, UnsupportedVersionGetsDiagnosticReplyThenClose)
{
    ServerFixture fx(fastServeConfig());
    NetClient client("127.0.0.1", fx.server.port());

    wire::RequestFrame frame;
    frame.requestId = 12345;
    frame.request = makeRequest("tiny", RegionSpec{0, 0, 0, 1},
                                UarchParams::armN1());
    std::vector<uint8_t> bytes;
    wire::encodeRequest(frame, bytes);
    bytes[wire::kLengthPrefixBytes + 4] = 99;   // a future version
    client.sendRaw(bytes.data(), bytes.size());

    // Unlike garbage, an unsupported version earns one parseable reply:
    // encoded at the server's minimum version, naming the range.
    wire::ResponseFrame reply;
    ASSERT_TRUE(client.recvResponse(reply));
    EXPECT_EQ(reply.requestId, 12345u);
    EXPECT_EQ(reply.version, wire::kMinVersion);
    EXPECT_EQ(reply.response.status, ServeStatus::INTERNAL_ERROR);
    EXPECT_NE(reply.response.message.find("unsupported protocol version"),
              std::string::npos);
    EXPECT_NE(reply.response.message.find("1..2"), std::string::npos);
    // ... then the connection is closed like any protocol error.
    EXPECT_FALSE(client.recvResponse(reply));

    for (int i = 0; i < 100 && fx.server.stats().protocolErrors == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const NetServerStats stats = fx.server.stats();
    EXPECT_EQ(stats.unsupportedVersionFrames, 1u);
    EXPECT_EQ(stats.protocolErrors, 1u);
}

TEST(NetServe, PerFrameNegotiationServesV1AndV2SideBySide)
{
    ServerFixture fx(fastServeConfig());
    // A calibrated model: v2 clients see the interval, v1 clients the
    // bare point.
    {
        FeatureConfig cfg;
        cfg.numPercentiles = 5;
        cfg.robSweep = {4, 64};
        cfg.latencyRobSizes = {4, 64};
        const FeatureLayout layout(cfg);
        Mlp net({layout.dim(), 16, 1}, 99);
        ModelArtifact artifact;
        artifact.features = cfg;
        artifact.model = TrainedModel(
            std::move(net), std::vector<float>(layout.dim(), 0.0f),
            std::vector<float>(layout.dim(), 1.0f), {});
        artifact.calibration.scores = {0.05, 0.10, 0.20};
        artifact.calibration.featLo.assign(layout.dim(), -1e9f);
        artifact.calibration.featHi.assign(layout.dim(), 1e9f);
        fx.service.registry().addArtifact("cal", artifact);
    }
    const PredictRequest request = makeRequest(
        "cal", RegionSpec{9, 0, 0, 1}, UarchParams::armN1());

    // NetClient speaks the current version: full uncertainty payload.
    NetClient client("127.0.0.1", fx.server.port());
    const PredictResponse v2 = client.predict(request);
    ASSERT_EQ(v2.status, ServeStatus::OK);
    EXPECT_TRUE(v2.calibrated);

    // A hand-rolled v1 frame on the same server, same model: the same
    // cached cpi double, point-only.
    wire::RequestFrame old_frame;
    old_frame.requestId = 77;
    old_frame.version = 1;
    old_frame.request = request;
    std::vector<uint8_t> bytes;
    wire::encodeRequest(old_frame, bytes);
    client.sendRaw(bytes.data(), bytes.size());
    wire::ResponseFrame reply;
    ASSERT_TRUE(client.recvResponse(reply));
    EXPECT_EQ(reply.requestId, 77u);
    EXPECT_EQ(reply.version, 1);
    EXPECT_EQ(reply.response.status, ServeStatus::OK);
    EXPECT_EQ(reply.response.cpi, v2.cpi);      // bitwise: cache hit
    EXPECT_FALSE(reply.response.calibrated);
    EXPECT_EQ(reply.response.lo, 0.0);
    EXPECT_EQ(reply.response.hi, 0.0);
}

} // anonymous namespace
} // namespace concorde
