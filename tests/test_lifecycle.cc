/**
 * @file
 * End-to-end model-lifecycle tests: sharded checkpointable dataset
 * generation (bitwise resume), resumable training (bitwise resume of
 * the full optimizer state), versioned ModelArtifact round-trips,
 * registry hot-swap under concurrent load, and the CLI's strict
 * exit-code contract for the lifecycle subcommands.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/artifacts.hh"
#include "core/dataset.hh"
#include "core/model_artifact.hh"
#include "serve/prediction_service.hh"

namespace concorde
{
namespace
{

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::string
freshDir(const std::string &name)
{
    const std::string dir = "/tmp/concorde_lifecycle_" + name;
    const std::string cmd = "rm -rf '" + dir + "'";
    EXPECT_EQ(std::system(cmd.c_str()), 0);
    return dir;
}

DatasetConfig
smallConfig(size_t n, uint64_t seed)
{
    DatasetConfig config;
    config.numSamples = n;
    config.regionChunks = 2;
    config.seed = seed;
    return config;
}

/** Shared labeled dataset for the training tests (built once). */
const Dataset &
trainingData()
{
    static const Dataset data = buildDataset(smallConfig(48, 4242));
    return data;
}

TrainConfig
smallTrainConfig()
{
    TrainConfig tc;
    tc.epochs = 6;
    tc.batchSize = 16;
    tc.seed = 99;
    tc.threads = 2;
    tc.valFraction = 0.25;
    return tc;
}

// ---- sharded dataset generation ----

TEST(ShardedDataset, MatchesMonolithicBuildBitwise)
{
    const DatasetConfig config = smallConfig(17, 1001);
    const std::string dir = freshDir("shard_match");
    const auto result = buildDatasetShards(config, dir, 5);
    EXPECT_EQ(result.shardsBuilt, 4u);      // 5+5+5+2
    EXPECT_TRUE(result.complete());

    const Dataset sharded = loadDatasetShards(dir);
    const Dataset mono = buildDataset(config);
    ASSERT_EQ(sharded.size(), mono.size());
    EXPECT_EQ(sharded.dim, mono.dim);
    EXPECT_EQ(sharded.features, mono.features);
    EXPECT_EQ(sharded.labels, mono.labels);
    for (size_t i = 0; i < mono.size(); ++i) {
        EXPECT_TRUE(sharded.meta[i].params == mono.meta[i].params);
        EXPECT_EQ(sharded.meta[i].region.startChunk,
                  mono.meta[i].region.startChunk);
        EXPECT_EQ(sharded.meta[i].mispredicts, mono.meta[i].mispredicts);
        EXPECT_EQ(sharded.meta[i].execRatio, mono.meta[i].execRatio);
    }
}

TEST(ShardedDataset, InterruptedResumeIsByteIdentical)
{
    const DatasetConfig config = smallConfig(13, 2002);
    const size_t shard_samples = 4;     // shards of 4,4,4,1

    const std::string dir_full = freshDir("shard_full");
    const auto full = buildDatasetShards(config, dir_full, shard_samples);
    EXPECT_TRUE(full.complete());

    // "Kill" the run after every shard: each call generates one shard
    // and stops, mimicking a job that dies and restarts repeatedly.
    const std::string dir_resumed = freshDir("shard_resumed");
    size_t calls = 0;
    while (true) {
        const auto step =
            buildDatasetShards(config, dir_resumed, shard_samples, 1);
        ++calls;
        ASSERT_LE(calls, 16u) << "resume loop did not converge";
        if (step.complete())
            break;
        EXPECT_EQ(step.shardsBuilt, 1u);
    }
    EXPECT_EQ(calls, 4u);

    // Every artifact of the interrupted run must equal the
    // uninterrupted one byte for byte: manifest and all shards.
    EXPECT_EQ(fileBytes(DatasetManifest::manifestFile(dir_full)),
              fileBytes(DatasetManifest::manifestFile(dir_resumed)));
    const DatasetManifest manifest =
        DatasetManifest::load(DatasetManifest::manifestFile(dir_full));
    ASSERT_EQ(manifest.numShards(), 4u);
    for (size_t s = 0; s < manifest.numShards(); ++s) {
        EXPECT_EQ(fileBytes(DatasetManifest::shardFile(dir_full, s)),
                  fileBytes(DatasetManifest::shardFile(dir_resumed, s)))
            << "shard " << s;
    }

    // And a truncated-tempfile crash must not poison a resume: only
    // atomically renamed shards count.
    EXPECT_EQ(loadDatasetShards(dir_resumed).size(), 13u);
}

TEST(ShardedDataset, ReportsProgressAndSkipsCompletedShards)
{
    const DatasetConfig config = smallConfig(9, 3003);
    const std::string dir = freshDir("shard_progress");

    const auto first = buildDatasetShards(config, dir, 3, 1);
    EXPECT_EQ(first.shardsBuilt, 1u);
    EXPECT_EQ(first.shardsSkipped, 0u);
    EXPECT_EQ(first.shardsRemaining, 2u);
    EXPECT_FALSE(first.complete());

    const auto second = buildDatasetShards(config, dir, 3);
    EXPECT_EQ(second.shardsBuilt, 2u);
    EXPECT_EQ(second.shardsSkipped, 1u);
    EXPECT_TRUE(second.complete());

    // A fully complete rerun is a no-op.
    const auto third = buildDatasetShards(config, dir, 3);
    EXPECT_EQ(third.shardsBuilt, 0u);
    EXPECT_EQ(third.shardsSkipped, 3u);
    EXPECT_TRUE(third.complete());

    EXPECT_NE(datasetManifestHash(dir), 0u);
}

TEST(ShardedDatasetDeathTest, RejectsMismatchedConfig)
{
    DatasetConfig config = smallConfig(6, 4004);
    const std::string dir = freshDir("shard_mismatch");
    buildDatasetShards(config, dir, 3, 1);
    config.seed = 5005;     // different generation plan, same directory
    EXPECT_EXIT(buildDatasetShards(config, dir, 3),
                ::testing::ExitedWithCode(1), "different dataset config");
}

// ---- resumable training ----

TEST(ResumableTraining, ValidationMetricsArePopulated)
{
    const Dataset &data = trainingData();
    const TrainConfig tc = smallTrainConfig();
    const TrainRun run = trainMlpResumable(data.features, data.labels,
                                           data.dim, tc);
    EXPECT_TRUE(run.finished);
    ASSERT_EQ(run.history.size(), tc.epochs);
    for (size_t e = 0; e < run.history.size(); ++e) {
        EXPECT_EQ(run.history[e].epoch, e);
        EXPECT_GT(run.history[e].trainRelErr, 0.0);
        EXPECT_GE(run.history[e].valRelErr, 0.0) << "no held-out metric";
        EXPECT_GT(run.history[e].lr, 0.0);
    }
    // Training must actually reduce training error.
    EXPECT_LT(run.history.back().trainRelErr,
              run.history.front().trainRelErr);
    EXPECT_TRUE(run.model.valid());
}

TEST(ResumableTraining, NoValSplitMatchesLegacyTrainMlp)
{
    // valFraction == 0 must reproduce the historical trainMlp path
    // bit-for-bit (standardization over all rows, identity order).
    const Dataset &data = trainingData();
    TrainConfig tc = smallTrainConfig();
    tc.valFraction = 0.0;
    const TrainedModel via_wrapper =
        trainMlp(data.features, data.labels, data.dim, tc);
    const TrainRun run = trainMlpResumable(data.features, data.labels,
                                           data.dim, tc);
    const std::string path_a = "/tmp/concorde_lifecycle_legacy_a.bin";
    const std::string path_b = "/tmp/concorde_lifecycle_legacy_b.bin";
    via_wrapper.save(path_a);
    run.model.save(path_b);
    EXPECT_EQ(fileBytes(path_a), fileBytes(path_b));
    EXPECT_LT(run.history.back().valRelErr, 0.0) << "no split requested";
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(ResumableTraining, InterruptedResumeIsBitwiseIdentical)
{
    const Dataset &data = trainingData();
    const TrainConfig tc = smallTrainConfig();
    const std::string ckpt_full = "/tmp/concorde_lifecycle_ckpt_full.bin";
    const std::string ckpt_resume =
        "/tmp/concorde_lifecycle_ckpt_resume.bin";
    std::remove(ckpt_full.c_str());
    std::remove(ckpt_resume.c_str());

    const TrainRun full = trainMlpResumable(
        data.features, data.labels, data.dim, tc, nullptr, ckpt_full);
    EXPECT_TRUE(full.finished);

    // Kill training after epochs 2, 3 (1 more), and resume to the end.
    TrainRun resumed = trainMlpResumable(
        data.features, data.labels, data.dim, tc, nullptr, ckpt_resume, 2);
    EXPECT_FALSE(resumed.finished);
    EXPECT_EQ(resumed.epochsCompleted(), 2u);
    resumed = trainMlpResumable(
        data.features, data.labels, data.dim, tc, nullptr, ckpt_resume, 1);
    EXPECT_FALSE(resumed.finished);
    EXPECT_EQ(resumed.epochsCompleted(), 3u);
    resumed = trainMlpResumable(
        data.features, data.labels, data.dim, tc, nullptr, ckpt_resume);
    EXPECT_TRUE(resumed.finished);
    ASSERT_EQ(resumed.history.size(), full.history.size());

    // The resumed run must be indistinguishable from the uninterrupted
    // one: identical per-epoch metrics, identical final checkpoint
    // bytes, identical saved model bytes.
    for (size_t e = 0; e < full.history.size(); ++e) {
        EXPECT_EQ(resumed.history[e].trainRelErr,
                  full.history[e].trainRelErr) << "epoch " << e;
        EXPECT_EQ(resumed.history[e].valRelErr, full.history[e].valRelErr)
            << "epoch " << e;
        EXPECT_EQ(resumed.history[e].lr, full.history[e].lr);
    }
    EXPECT_EQ(fileBytes(ckpt_full), fileBytes(ckpt_resume));

    const std::string model_full = "/tmp/concorde_lifecycle_model_f.bin";
    const std::string model_resume = "/tmp/concorde_lifecycle_model_r.bin";
    full.model.save(model_full);
    resumed.model.save(model_resume);
    EXPECT_EQ(fileBytes(model_full), fileBytes(model_resume));
    std::remove(ckpt_full.c_str());
    std::remove(ckpt_resume.c_str());
    std::remove(model_full.c_str());
    std::remove(model_resume.c_str());
}

TEST(ResumableTrainingDeathTest, RejectsForeignCheckpoint)
{
    const Dataset &data = trainingData();
    TrainConfig tc = smallTrainConfig();
    const std::string ckpt = "/tmp/concorde_lifecycle_ckpt_foreign.bin";
    std::remove(ckpt.c_str());
    trainMlpResumable(data.features, data.labels, data.dim, tc, nullptr,
                      ckpt, 1);
    tc.seed = 1717;     // different run; resuming would corrupt it
    EXPECT_EXIT(trainMlpResumable(data.features, data.labels, data.dim,
                                  tc, nullptr, ckpt),
                ::testing::ExitedWithCode(1), "refusing to resume");
    std::remove(ckpt.c_str());
}

// ---- versioned model artifacts ----

TEST(ModelArtifact, SaveLoadRoundTripsEverything)
{
    const Dataset &data = trainingData();
    TrainConfig tc = smallTrainConfig();
    tc.epochs = 3;
    const TrainRun run = trainMlpResumable(data.features, data.labels,
                                           data.dim, tc);

    ModelArtifact artifact;
    artifact.features = FeatureConfig{};
    artifact.model = run.model;
    artifact.provenance.datasetManifestHash = 0xDEADBEEFCAFEF00DULL;
    artifact.provenance.datasetPath = "/data/train";
    artifact.provenance.gitDescribe = buildGitDescribe();
    artifact.provenance.trainConfig = tc;
    artifact.provenance.trainedEpochs = run.epochsCompleted();
    artifact.provenance.heldOutRelErr = run.history.back().valRelErr;

    const std::string path_a = "/tmp/concorde_lifecycle_artifact_a.bin";
    const std::string path_b = "/tmp/concorde_lifecycle_artifact_b.bin";
    artifact.save(path_a);
    const ModelArtifact loaded = ModelArtifact::load(path_a);

    EXPECT_EQ(loaded.provenance.datasetManifestHash,
              artifact.provenance.datasetManifestHash);
    EXPECT_EQ(loaded.provenance.datasetPath,
              artifact.provenance.datasetPath);
    EXPECT_EQ(loaded.provenance.gitDescribe,
              artifact.provenance.gitDescribe);
    EXPECT_EQ(loaded.provenance.trainedEpochs,
              artifact.provenance.trainedEpochs);
    EXPECT_EQ(loaded.provenance.heldOutRelErr,
              artifact.provenance.heldOutRelErr);
    EXPECT_EQ(loaded.provenance.trainConfig.epochs, tc.epochs);
    EXPECT_EQ(loaded.provenance.trainConfig.seed, tc.seed);
    EXPECT_EQ(loaded.provenance.trainConfig.valFraction, tc.valFraction);

    // Predictions from the loaded artifact are the exact same bits.
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(loaded.model.predict(data.row(i)),
                  artifact.model.predict(data.row(i)));
    }

    // save -> load -> save is byte-identical.
    loaded.save(path_b);
    EXPECT_EQ(fileBytes(path_a), fileBytes(path_b));
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(ModelArtifact, PipelineAndServiceConsumeArtifacts)
{
    const ModelArtifact artifact = [] {
        ModelArtifact a;
        a.features = FeatureConfig{};
        a.model = artifacts::untrainedModel(a.features, 31);
        a.provenance.gitDescribe = buildGitDescribe();
        return a;
    }();
    const std::string path = "/tmp/concorde_lifecycle_artifact_pipe.bin";
    artifact.save(path);

    TraceSpan span;
    span.programId = programIdByCode("S7");
    span.traceId = 0;
    span.startChunk = 16;
    span.numChunks = 8;
    const UarchParams params = UarchParams::armN1();

    // Pipeline from an artifact == pipeline from the bare predictor.
    pipeline::PipelineConfig pc;
    pc.regionChunks = 2;
    pc.mode = pipeline::ExecMode::Scalar;
    pc.state = pipeline::StateMode::Independent;
    const ConcordePredictor bare = artifact.predictor();
    pipeline::AnalysisPipeline from_bare(bare, pc);
    pipeline::AnalysisPipeline from_artifact(ModelArtifact::load(path),
                                             pc);
    const auto res_bare = from_bare.run(span, params);
    const auto res_artifact = from_artifact.run(span, params);
    ASSERT_EQ(res_bare.regionCpi.size(), res_artifact.regionCpi.size());
    for (size_t i = 0; i < res_bare.regionCpi.size(); ++i)
        EXPECT_EQ(res_bare.regionCpi[i], res_artifact.regionCpi[i]);
    EXPECT_EQ(res_bare.programCpi, res_artifact.programCpi);

    // Service hot-loads the artifact and serves matching predictions
    // (provenance travels with the handle).
    serve::PredictionService service{};
    const serve::ModelHandle handle = service.loadModel("prod", path);
    ASSERT_TRUE(handle.valid());
    ASSERT_NE(handle.provenance, nullptr);
    EXPECT_EQ(handle.provenance->gitDescribe,
              artifact.provenance.gitDescribe);
    RegionSpec region;
    region.programId = span.programId;
    region.startChunk = 16;
    region.numChunks = 2;
    EXPECT_EQ(service.predict("prod", region, params),
              bare.predictCpi(region, params));
    service.shutdown();
    std::remove(path.c_str());
}

// ---- registry hot-swap under load ----

TEST(RegistryHotSwap, EveryPredictionAttributableToExactlyOneVersion)
{
    // Three artifact versions of the same name, distinguishable by
    // their weights (different init seeds).
    const FeatureConfig fc;
    std::vector<ModelArtifact> versions;
    std::vector<std::string> paths;
    for (uint64_t v = 0; v < 3; ++v) {
        ModelArtifact a;
        a.features = fc;
        a.model = artifacts::untrainedModel(fc, 100 + v);
        a.provenance.trainedEpochs = v;
        versions.push_back(a);
        const std::string path = "/tmp/concorde_lifecycle_swap_"
            + std::to_string(v) + ".bin";
        a.save(path);
        paths.push_back(path);
    }

    // The request grid: 2 regions x 4 design points.
    std::vector<RegionSpec> regions;
    for (int r = 0; r < 2; ++r) {
        RegionSpec spec;
        spec.programId = programIdByCode("S7");
        spec.traceId = 0;
        spec.startChunk = 16 + 2 * r;
        spec.numChunks = 2;
        regions.push_back(spec);
    }
    std::vector<UarchParams> points;
    for (int p = 0; p < 4; ++p) {
        UarchParams params = UarchParams::armN1();
        params.set(ParamId::RobSize, 64 << p);
        points.push_back(params);
    }

    // Ground truth per version: the exact doubles each version's model
    // produces for every grid cell.
    std::vector<std::vector<double>> expected(versions.size());
    for (size_t v = 0; v < versions.size(); ++v) {
        const ConcordePredictor predictor = versions[v].predictor();
        for (const auto &region : regions) {
            FeatureProvider provider(region, fc);
            for (const auto &params : points) {
                expected[v].push_back(
                    predictor.predictCpi(provider, params));
            }
        }
    }
    // The versions must actually disagree, or attribution is vacuous.
    EXPECT_NE(expected[0][0], expected[1][0]);
    EXPECT_NE(expected[1][0], expected[2][0]);

    serve::PredictionService service{};
    service.registry().addArtifact("prod", versions[0]);

    // Hammer predict() from client threads while the main thread keeps
    // hot-swapping versions under the same name.
    std::atomic<bool> stop{false};
    std::atomic<size_t> checked{0};
    std::atomic<size_t> mismatches{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
        clients.emplace_back([&, c]() {
            size_t i = static_cast<size_t>(c);
            while (!stop.load(std::memory_order_relaxed)) {
                const size_t r = i % regions.size();
                const size_t p = (i / regions.size()) % points.size();
                const double got =
                    service.predict("prod", regions[r], points[p]);
                const size_t cell = r * points.size() + p;
                bool matches_some_version = false;
                for (size_t v = 0; v < versions.size(); ++v) {
                    if (got == expected[v][cell]) {
                        matches_some_version = true;
                        break;
                    }
                }
                if (!matches_some_version)
                    mismatches.fetch_add(1);
                checked.fetch_add(1);
                ++i;
            }
        });
    }
    for (int swap = 0; swap < 30; ++swap) {
        service.registry().addArtifact("prod",
                                       versions[swap % versions.size()]);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    stop.store(true);
    for (auto &t : clients)
        t.join();

    EXPECT_GT(checked.load(), 0u);
    // No torn reads, no cross-version mixtures: every returned double
    // is bitwise one version's answer.
    EXPECT_EQ(mismatches.load(), 0u);

    // Stale-cache check: the same grid cell served before and after a
    // swap must answer with the *new* version's bits (the registration
    // id salts the cache key, so the old entry cannot hit).
    for (size_t v = 0; v < versions.size(); ++v) {
        service.registry().addFromArtifactFile("prod", paths[v]);
        for (size_t r = 0; r < regions.size(); ++r) {
            for (size_t p = 0; p < points.size(); ++p) {
                EXPECT_EQ(service.predict("prod", regions[r], points[p]),
                          expected[v][r * points.size() + p])
                    << "version " << v;
            }
        }
    }
    service.shutdown();
    for (const auto &path : paths)
        std::remove(path.c_str());
}

// ---- CLI exit-code contract for the lifecycle subcommands ----

#ifdef CONCORDE_CLI_PATH

int
cliExitCode(const std::string &args)
{
    const std::string cmd =
        std::string(CONCORDE_CLI_PATH) + " " + args + " >/dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    EXPECT_NE(status, -1);
    return WEXITSTATUS(status);
}

TEST(CliExitCodes, LifecycleSubcommandsRejectMalformedFlags)
{
    // dataset
    EXPECT_EQ(cliExitCode("dataset"), 2) << "missing out=";
    EXPECT_EQ(cliExitCode("dataset out=/tmp/x bogus=3"), 2);
    EXPECT_EQ(cliExitCode("dataset out=/tmp/x samples=abc"), 2);
    EXPECT_EQ(cliExitCode("dataset out=/tmp/x shard=0"), 2);
    EXPECT_EQ(cliExitCode("dataset out=/tmp/x program=NOPE"), 2);
    // train
    EXPECT_EQ(cliExitCode("train data=/tmp/x"), 2) << "missing out=";
    EXPECT_EQ(cliExitCode("train data=/tmp/x out=/tmp/y val=1.5"), 2);
    EXPECT_EQ(cliExitCode("train data=/tmp/x out=/tmp/y val=nan"), 2);
    EXPECT_EQ(cliExitCode("train data=/tmp/x out=/tmp/y epochs=zero"), 2);
    EXPECT_EQ(cliExitCode("train data=/tmp/x out=/tmp/y max_epochs=2"), 2)
        << "partial run without a checkpoint persists nothing";
    EXPECT_EQ(cliExitCode("train frobnicate"), 2);
    // eval
    EXPECT_EQ(cliExitCode("eval model=/tmp/x"), 2) << "missing data=";
    EXPECT_EQ(cliExitCode("eval wat=1"), 2);
    // unknown subcommand keeps exiting 2 too
    EXPECT_EQ(cliExitCode("retrain"), 2);
}

#endif // CONCORDE_CLI_PATH

} // anonymous namespace
} // namespace concorde
