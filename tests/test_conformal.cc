/**
 * @file
 * Unit tests for the serializable conformal-calibration state: quantile
 * finite-sample edge cases (tiny calibration sets, alpha near the
 * ends), interval and OOD-envelope math, byte-identical serialization
 * round trips, the trainer integration (TrainRun.calibration exists iff
 * a validation split does), and artifact version compatibility (a v1
 * artifact, which predates calibration, loads as "uncalibrated").
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.hh"
#include "common/serialize.hh"
#include "core/model_artifact.hh"
#include "ml/calibration.hh"
#include "ml/conformal.hh"
#include "ml/trainer.hh"

namespace concorde
{
namespace
{

ConformalCalibration
calWithScores(std::vector<double> scores)
{
    ConformalCalibration cal;
    cal.scores = std::move(scores);
    return cal;
}

/** y depends linearly on x plus noise -- easy to fit approximately. */
std::pair<std::vector<float>, std::vector<float>>
syntheticDataset(size_t n, size_t dim, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> xs(n * dim);
    std::vector<float> ys(n);
    for (size_t i = 0; i < n; ++i) {
        float sum = 0.0f;
        for (size_t d = 0; d < dim; ++d) {
            const float v = static_cast<float>(rng.nextGaussian());
            xs[i * dim + d] = v;
            sum += v * static_cast<float>(d + 1) * 0.05f;
        }
        ys[i] = 1.5f + sum
            + 0.05f * static_cast<float>(rng.nextGaussian());
        if (ys[i] < 0.05f)
            ys[i] = 0.05f;
    }
    return {xs, ys};
}

// ---- quantile finite-sample edge cases ----

TEST(ConformalCalibration, QuantileOnEmptyCalibrationPanics)
{
    const ConformalCalibration cal;
    EXPECT_FALSE(cal.valid());
    EXPECT_DEATH(cal.quantile(0.1), "empty calibration");
}

TEST(ConformalCalibration, QuantileRejectsDegenerateAlpha)
{
    const ConformalCalibration cal = calWithScores({0.1});
    EXPECT_DEATH(cal.quantile(0.0), "alpha");
    EXPECT_DEATH(cal.quantile(1.0), "alpha");
    EXPECT_DEATH(cal.quantile(-0.5), "alpha");
}

TEST(ConformalCalibration, SingleSampleQuantile)
{
    // n = 1: rank = ceil(2 (1 - alpha)). For alpha < 0.5 the corrected
    // rank (2) exceeds the support, so the quantile must be *inflated*
    // past the observed score -- never silently under-cover.
    const ConformalCalibration cal = calWithScores({0.5});
    EXPECT_GT(cal.quantile(0.1), 0.5);
    // For alpha > 0.5 the rank is 1: the observed score itself.
    EXPECT_EQ(cal.quantile(0.9), 0.5);
}

TEST(ConformalCalibration, AlphaNearZeroInflatesBeyondSupport)
{
    std::vector<double> scores;
    for (int i = 1; i <= 10; ++i)
        scores.push_back(0.01 * i);
    const ConformalCalibration cal = calWithScores(scores);
    // ceil(11 * 0.999) = 11 > n = 10: beyond the calibration support.
    EXPECT_GT(cal.quantile(0.001), scores.back());
}

TEST(ConformalCalibration, AlphaNearOneUsesSmallestScore)
{
    std::vector<double> scores;
    for (int i = 1; i <= 10; ++i)
        scores.push_back(0.01 * i);
    const ConformalCalibration cal = calWithScores(scores);
    // ceil(11 * 0.001) = 1: the smallest conformity score.
    EXPECT_EQ(cal.quantile(0.999), scores.front());
}

TEST(ConformalCalibration, QuantileMonotoneInAlpha)
{
    std::vector<double> scores;
    Rng rng(11);
    for (int i = 0; i < 200; ++i)
        scores.push_back(rng.nextDouble());
    std::sort(scores.begin(), scores.end());
    const ConformalCalibration cal = calWithScores(scores);
    double prev = cal.quantile(0.99);
    for (double alpha : {0.5, 0.2, 0.1, 0.05, 0.01}) {
        const double q = cal.quantile(alpha);
        EXPECT_GE(q, prev);
        prev = q;
    }
}

// ---- interval + OOD math ----

TEST(ConformalCalibration, IntervalBracketsPointAndClampsAtZero)
{
    const ConformalCalibration cal = calWithScores({0.25});
    double lo = -1.0, hi = -1.0;
    cal.intervalAround(2.0, 0.9, lo, hi);   // q = 0.25
    EXPECT_DOUBLE_EQ(lo, 2.0 * 0.75);
    EXPECT_DOUBLE_EQ(hi, 2.0 * 1.25);

    // q > 1 would give a negative lower bound; CPI can't be negative.
    const ConformalCalibration wide = calWithScores({1.5});
    wide.intervalAround(2.0, 0.9, lo, hi);
    EXPECT_EQ(lo, 0.0);
    EXPECT_DOUBLE_EQ(hi, 2.0 * 2.5);
}

TEST(ConformalCalibration, OodScoreCountsDimensionsOutsideEnvelope)
{
    const size_t dim = 4;
    // Envelope from two rows: per-dim range [0, 1].
    const std::vector<float> envelope = {0, 0, 0, 0, 1, 1, 1, 1};
    const ConformalCalibration cal = fitConformalCalibration(
        {1.0f, 1.0f}, {1.0f, 1.2f}, envelope, dim);

    const std::vector<float> inside = {0.5f, 0.0f, 1.0f, 0.25f};
    EXPECT_EQ(cal.oodScore(inside.data(), dim), 0.0);

    const std::vector<float> one_out = {0.5f, 2.0f, 1.0f, 0.25f};
    EXPECT_DOUBLE_EQ(cal.oodScore(one_out.data(), dim), 0.25);

    const std::vector<float> all_out = {-1.0f, 2.0f, 5.0f, -0.1f};
    EXPECT_DOUBLE_EQ(cal.oodScore(all_out.data(), dim), 1.0);
}

TEST(ConformalCalibration, NoEnvelopeMeansNoOodSignal)
{
    // Empty envelope matrix: fit keeps scores but records no bounds.
    const ConformalCalibration cal =
        fitConformalCalibration({1.0f}, {1.1f}, {}, 4);
    EXPECT_TRUE(cal.valid());
    const std::vector<float> row = {1e9f, -1e9f, 0.0f, 3.0f};
    EXPECT_EQ(cal.oodScore(row.data(), 4), 0.0);
}

TEST(ConformalCalibration, FitRejectsMismatchedInputs)
{
    EXPECT_EXIT(fitConformalCalibration({1.0f, 2.0f}, {1.0f}, {}, 4),
                ::testing::ExitedWithCode(1), "size mismatch");
    EXPECT_EXIT(fitConformalCalibration({}, {}, {}, 4),
                ::testing::ExitedWithCode(1), "empty calibration");
    EXPECT_EXIT(fitConformalCalibration({1.0f}, {1.0f}, {1.0f, 2.0f}, 4),
                ::testing::ExitedWithCode(1), "multiple of dim");
}

TEST(ConformalCalibration, EmpiricalCoverageOfPureCalibrationMath)
{
    // Without any model: labels scatter multiplicatively around the
    // point predictions. Fit on one half, measure coverage on the
    // other -- the conformal guarantee must hold within sampling noise.
    Rng rng(77);
    const size_t n = 2000;
    std::vector<float> preds(n), labels(n);
    for (size_t i = 0; i < n; ++i) {
        preds[i] = 1.0f + static_cast<float>(rng.nextDouble());
        labels[i] = preds[i]
            * (1.0f + 0.2f * static_cast<float>(rng.nextGaussian()));
    }
    const size_t half = n / 2;
    const ConformalCalibration cal = fitConformalCalibration(
        {preds.begin(), preds.begin() + half},
        {labels.begin(), labels.begin() + half}, {}, 1);

    for (double alpha : {0.3, 0.1}) {
        size_t covered = 0;
        for (size_t i = half; i < n; ++i) {
            double lo = 0.0, hi = 0.0;
            cal.intervalAround(preds[i], alpha, lo, hi);
            if (labels[i] >= lo && labels[i] <= hi)
                ++covered;
        }
        const double coverage =
            static_cast<double>(covered) / static_cast<double>(n - half);
        EXPECT_GE(coverage, 1.0 - alpha - 0.04)
            << "undercoverage at alpha " << alpha;
    }
}

// ---- serialization ----

TEST(ConformalCalibration, SerializationRoundTripIsByteIdentical)
{
    Rng rng(5);
    ConformalCalibration cal;
    for (int i = 0; i < 64; ++i)
        cal.scores.push_back(rng.nextDouble());
    std::sort(cal.scores.begin(), cal.scores.end());
    for (int d = 0; d < 7; ++d) {
        cal.featLo.push_back(static_cast<float>(-d));
        cal.featHi.push_back(static_cast<float>(d * d));
    }

    const std::string a = "/tmp/concorde_test_cal_a.bin";
    const std::string b = "/tmp/concorde_test_cal_b.bin";
    {
        BinaryWriter out(a);
        cal.save(out);
    }
    ConformalCalibration loaded;
    {
        BinaryReader in(a);
        loaded = ConformalCalibration::load(in);
    }
    EXPECT_EQ(loaded.scores, cal.scores);
    EXPECT_EQ(loaded.featLo, cal.featLo);
    EXPECT_EQ(loaded.featHi, cal.featHi);
    {
        BinaryWriter out(b);
        loaded.save(out);
    }
    // Byte identity, not just value equality: the calibration feeds
    // artifact fingerprints, which must be stable across round trips.
    EXPECT_EQ(fileHash(a), fileHash(b));
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(ConformalCalibration, LoadRejectsCorruptState)
{
    const std::string path = "/tmp/concorde_test_cal_corrupt.bin";
    {
        BinaryWriter out(path);
        ConformalCalibration cal;
        cal.scores = {0.5, 0.1};    // deliberately unsorted
        cal.save(out);
    }
    EXPECT_EXIT(
        {
            BinaryReader in(path);
            ConformalCalibration::load(in);
        },
        ::testing::ExitedWithCode(1), "not sorted");
    std::remove(path.c_str());
}

// ---- trainer + artifact integration ----

TEST(ConformalCalibration, TrainerFitsCalibrationIffValidationSplit)
{
    const size_t dim = 6;
    auto [xs, ys] = syntheticDataset(300, dim, 91);
    TrainConfig config;
    config.epochs = 3;
    config.threads = 2;

    config.valFraction = 0.2;
    const TrainRun with_val =
        trainMlpResumable(xs, ys, dim, config, nullptr);
    EXPECT_TRUE(with_val.calibration.valid());
    // Scores come from the held-out split; envelope from the train split.
    EXPECT_EQ(with_val.calibration.size(), 300u / 5);
    EXPECT_EQ(with_val.calibration.featLo.size(), dim);

    config.valFraction = 0.0;
    const TrainRun without_val =
        trainMlpResumable(xs, ys, dim, config, nullptr);
    EXPECT_FALSE(without_val.calibration.valid());
}

TEST(ConformalCalibration, ArtifactRoundTripAndV1Compatibility)
{
    const size_t dim = 6;
    auto [xs, ys] = syntheticDataset(300, dim, 92);
    TrainConfig config;
    config.epochs = 3;
    config.threads = 2;
    config.valFraction = 0.2;
    const TrainRun run = trainMlpResumable(xs, ys, dim, config, nullptr);

    ModelArtifact artifact;
    artifact.model = run.model;
    artifact.calibration = run.calibration;
    const std::string v2_path = "/tmp/concorde_test_artifact_v2.bin";
    artifact.save(v2_path);

    const ModelArtifact loaded = ModelArtifact::load(v2_path);
    ASSERT_TRUE(loaded.calibrated());
    EXPECT_EQ(loaded.calibration.scores, artifact.calibration.scores);
    EXPECT_EQ(loaded.calibration.featLo, artifact.calibration.featLo);
    EXPECT_EQ(loaded.calibration.featHi, artifact.calibration.featHi);

    // Forge a genuine v1 file from an uncalibrated save: the v2 format
    // is v1 + (version bump + trailing has-calibration byte), so patch
    // the version field back to 1 and drop the last byte.
    ModelArtifact uncal = artifact;
    uncal.calibration = ConformalCalibration{};
    const std::string uncal_path =
        "/tmp/concorde_test_artifact_uncal.bin";
    uncal.save(uncal_path);
    std::vector<uint8_t> bytes;
    {
        std::FILE *f = std::fopen(uncal_path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        bytes.resize(static_cast<size_t>(std::ftell(f)));
        std::fseek(f, 0, SEEK_SET);
        ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
        std::fclose(f);
    }
    ASSERT_GT(bytes.size(), 13u);
    bytes[8] = 1;                   // u32 version at offset 8, LE
    bytes.pop_back();               // the v2 has-calibration flag
    const std::string v1_path = "/tmp/concorde_test_artifact_v1.bin";
    {
        std::FILE *f = std::fopen(v1_path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size() - 0, f),
                  bytes.size());
        std::fclose(f);
    }

    // A v1 artifact (predates calibration) loads and reports
    // uncalibrated; its model predicts identically.
    const ModelArtifact v1 = ModelArtifact::load(v1_path);
    EXPECT_FALSE(v1.calibrated());
    EXPECT_EQ(v1.model.predict(xs.data()), artifact.model.predict(xs.data()));

    std::remove(v2_path.c_str());
    std::remove(uncal_path.c_str());
    std::remove(v1_path.c_str());
}

// ---- ConformalPredictor wrapper over a shipped calibration ----

TEST(ConformalPredictor, WrapperOverShippedCalibrationMatchesDirectFit)
{
    const size_t dim = 6;
    auto [train_x, train_y] = syntheticDataset(600, dim, 93);
    auto [cal_x, cal_y] = syntheticDataset(200, dim, 94);
    TrainConfig config;
    config.epochs = 5;
    config.threads = 2;
    TrainedModel model = trainMlp(train_x, train_y, dim, config);
    TrainedModel copy = model;

    const ConformalPredictor direct(std::move(model), cal_x, cal_y, dim);
    const ConformalPredictor shipped(std::move(copy),
                                     direct.calibration());
    EXPECT_EQ(shipped.calibrationSize(), direct.calibrationSize());
    for (size_t i = 0; i < 10; ++i) {
        const auto a = direct.predictInterval(cal_x.data() + i * dim, 0.1);
        const auto b =
            shipped.predictInterval(cal_x.data() + i * dim, 0.1);
        EXPECT_EQ(a.point, b.point);
        EXPECT_EQ(a.lo, b.lo);
        EXPECT_EQ(a.hi, b.hi);
    }
}

} // anonymous namespace
} // namespace concorde
