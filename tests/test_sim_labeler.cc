/**
 * @file
 * A/B gate for the simulator labeling fast path: the scratch-reusing
 * engine (simulateTrace / simulateCombined / simulateRegion) must be
 * byte-identical to the kept reference implementation
 * (simulateTraceReference) on micro-traces, sampled regions, and
 * randomized design points -- across any interleaving of regions and
 * parameters through one reused SimScratch. Also pins the combined-trace
 * caches on RegionAnalysis, the memoized Figure-11 estimate, and the
 * runaway guard.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "analysis/trace_analyzer.hh"
#include "analytical/feature_provider.hh"
#include "sim/o3_core.hh"
#include "trace/workloads.hh"

namespace concorde
{
namespace
{

std::vector<Instruction>
aluTrace(size_t n, int dep_dist)
{
    std::vector<Instruction> region(n);
    for (size_t i = 0; i < n; ++i) {
        region[i].type = InstrType::IntAlu;
        region[i].pc = 0x1000 + (i % 64) * 4;
        if (dep_dist > 0 && i >= static_cast<size_t>(dep_dist))
            region[i].srcDeps[0] = static_cast<int32_t>(i) - dep_dist;
    }
    return region;
}

std::vector<Instruction>
loadTrace(size_t n, size_t lines)
{
    std::vector<Instruction> region(n);
    for (size_t i = 0; i < n; ++i) {
        region[i].type = InstrType::Load;
        region[i].pc = 0x1000 + (i % 64) * 4;
        region[i].memAddr = 0x100000 + (i % lines) * 64;
    }
    return region;
}

/** Field-by-field exact equality, including the occupancy doubles. */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.avgRobOccupancy, b.avgRobOccupancy);
    EXPECT_EQ(a.avgRenameQOccupancy, b.avgRenameQOccupancy);
    EXPECT_EQ(a.avgLqOccupancy, b.avgLqOccupancy);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.actualLoadLatencySum, b.actualLoadLatencySum);
    EXPECT_EQ(a.loadCount, b.loadCount);
    EXPECT_EQ(a.windowCommitCycles, b.windowCommitCycles);
}

SimResult
referenceRegion(const UarchParams &params, RegionAnalysis &analysis,
                int window_k = 0)
{
    const auto &branch_info = analysis.branches(params.branch);
    return simulateTraceReference(params, analysis.warmupInstrs(),
                                  analysis.instrs(), branch_info.mispredict,
                                  window_k);
}

TEST(SimLabeler, FastMatchesReferenceOnMicroTraces)
{
    const UarchParams n1 = UarchParams::armN1();
    const std::vector<std::vector<Instruction>> regions = {
        aluTrace(4000, 0), aluTrace(4000, 1), loadTrace(4000, 512),
    };
    SimScratch scratch;
    for (const auto &region : regions) {
        const std::vector<uint8_t> flags(region.size(), 0);
        const auto warm = loadTrace(2000, 256);
        const SimResult ref =
            simulateTraceReference(n1, warm, region, flags);
        const SimResult fresh = simulateTrace(n1, warm, region, flags);
        const SimResult reused =
            simulateTrace(n1, warm, region, flags, 0, &scratch);
        expectIdentical(ref, fresh);
        expectIdentical(ref, reused);
    }
}

TEST(SimLabeler, FastMatchesReferenceWithMispredictsAndWindows)
{
    const UarchParams n1 = UarchParams::armN1();
    auto region = aluTrace(6000, 0);
    std::vector<uint8_t> flags(region.size(), 0);
    for (size_t i = 25; i < region.size(); i += 50) {
        region[i].type = InstrType::Branch;
        region[i].branchKind = BranchKind::DirectCond;
        flags[i] = 1;
    }
    SimScratch scratch;
    const SimResult ref =
        simulateTraceReference(n1, {}, region, flags, 500);
    const SimResult fast =
        simulateTrace(n1, {}, region, flags, 500, &scratch);
    expectIdentical(ref, fast);
    EXPECT_EQ(fast.branchMispredicts, 120u);
    EXPECT_EQ(fast.windowCommitCycles.size(), region.size() / 500);
}

TEST(SimLabeler, ScratchReuseIdenticalAcrossInterleavedRegionsAndParams)
{
    // One scratch, reused across interleaved (region, params) pairs with
    // different trace lengths, memory geometries, and prefetch settings:
    // every run must match both a fresh-scratch run and the reference.
    Rng rng(321);
    std::vector<RegionAnalysis> analyses;
    analyses.reserve(3);
    for (int r = 0; r < 3; ++r)
        analyses.emplace_back(sampleRegion(rng, 2), 1);

    std::vector<UarchParams> params;
    params.push_back(UarchParams::armN1());
    params.push_back(UarchParams::bigCore());
    for (int d = 0; d < 4; ++d)
        params.push_back(UarchParams::sampleRandom(rng));
    params[0].memory.prefetchDegree = 4;
    params[1].memory.prefetchDegree = 0;

    SimScratch reused;
    for (int round = 0; round < 2; ++round) {
        for (size_t pi = 0; pi < params.size(); ++pi) {
            // Interleave: a different region each (round, param) visit.
            RegionAnalysis &analysis =
                analyses[(pi + static_cast<size_t>(round)) % 3];
            const SimResult ref = referenceRegion(params[pi], analysis);
            const SimResult warm_scratch =
                simulateRegion(params[pi], analysis, 0, &reused);
            const SimResult fresh =
                simulateRegion(params[pi], analysis);
            expectIdentical(ref, warm_scratch);
            expectIdentical(ref, fresh);
        }
    }
}

TEST(SimLabeler, CombinedTraceCacheMatchesPerCallRebuild)
{
    Rng rng(77);
    RegionAnalysis analysis(sampleRegion(rng, 2), 1);
    const auto &warm = analysis.warmupInstrs();
    const auto &rows = analysis.instrs();
    const auto &combined = analysis.combinedInstrs();

    ASSERT_EQ(combined.size(), warm.size() + rows.size());
    const int32_t offset = static_cast<int32_t>(warm.size());
    for (size_t i = 0; i < warm.size(); ++i)
        EXPECT_EQ(std::memcmp(&combined[i], &warm[i], sizeof(Instruction)),
                  0);
    for (size_t i = 0; i < rows.size(); ++i) {
        Instruction expect = rows[i];
        for (int d = 0; d < kMaxSrcDeps; ++d) {
            if (expect.srcDeps[d] >= 0)
                expect.srcDeps[d] += offset;
        }
        if (expect.memDep >= 0)
            expect.memDep += offset;
        EXPECT_EQ(std::memcmp(&combined[offset + i], &expect,
                              sizeof(Instruction)),
                  0);
    }

    const BranchConfig branch;
    const auto &flags = analysis.combinedFlags(branch);
    const auto &mispredict = analysis.branches(branch).mispredict;
    ASSERT_EQ(flags.size(), combined.size());
    for (size_t i = 0; i < warm.size(); ++i)
        EXPECT_EQ(flags[i], 0);
    for (size_t i = 0; i < mispredict.size(); ++i)
        EXPECT_EQ(flags[warm.size() + i], mispredict[i]);

    // Cached: same object on every call.
    EXPECT_EQ(&analysis.combinedInstrs(), &combined);
    EXPECT_EQ(&analysis.combinedFlags(branch), &flags);
}

TEST(SimLabeler, AdoptBranchesResyncsCachedFlags)
{
    Rng rng(88);
    RegionAnalysis analysis(sampleRegion(rng, 2), 1);
    const BranchConfig branch;
    const auto &flags = analysis.combinedFlags(branch);

    BranchAnalysis replacement;
    replacement.mispredict.assign(analysis.regionSize(), 0);
    for (size_t i = 0; i < replacement.mispredict.size(); i += 7)
        replacement.mispredict[i] = 1;
    replacement.numBranches = 1;
    replacement.numMispredicts = 1;
    analysis.adoptBranches(branch, replacement);

    // Same vector object, rewritten contents.
    const auto &after = analysis.combinedFlags(branch);
    EXPECT_EQ(&after, &flags);
    const size_t warm_count = analysis.warmupSize();
    for (size_t i = 0; i < replacement.mispredict.size(); ++i)
        EXPECT_EQ(after[warm_count + i], replacement.mispredict[i]);
}

TEST(SimLabeler, EstimatedLoadLatencySumMatchesDirectLoop)
{
    Rng rng(99);
    FeatureProvider provider(sampleRegion(rng, 2));
    const MemoryConfig configs[] = {
        MemoryConfig{},
        MemoryConfig{32, 32, 512, 0},
        MemoryConfig{256, 64, 4096, 4},
    };
    for (const MemoryConfig &mem : configs) {
        const auto &dside = provider.analysis().dside(mem);
        const auto &rows = provider.analysis().instrs();
        uint64_t direct = 0;
        for (size_t i = 0; i < rows.size(); ++i) {
            if (rows[i].isLoad())
                direct += static_cast<uint64_t>(dside.execLat[i]);
        }
        EXPECT_EQ(provider.estimatedLoadLatencySum(mem), direct);
        // Memoized path returns the same value.
        EXPECT_EQ(provider.estimatedLoadLatencySum(mem), direct);
    }
}

TEST(SimLabelerDeathTest, RunawayGuardPanicsOnDeadlockedTrace)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    // A load whose memDep points at itself never wakes: the engine makes
    // no progress and must hit the runaway panic, on both paths.
    std::vector<Instruction> region(4);
    for (auto &instr : region) {
        instr.type = InstrType::IntAlu;
        instr.pc = 0x1000;
    }
    region[2].type = InstrType::Load;
    region[2].memAddr = 0x2000;
    region[2].memDep = 2;
    const std::vector<uint8_t> flags(region.size(), 0);
    const UarchParams n1 = UarchParams::armN1();
    EXPECT_DEATH(simulateTrace(n1, {}, region, flags),
                 "simulator runaway");
    EXPECT_DEATH(simulateTraceReference(n1, {}, region, flags),
                 "simulator runaway");
}

} // anonymous namespace
} // namespace concorde
