/**
 * @file
 * Tests for the TAO-style GRU sequence baseline.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "baseline/tao.hh"
#include "sim/o3_core.hh"

namespace concorde
{
namespace
{

TaoConfig
tinyConfig()
{
    TaoConfig config;
    config.hidden = 8;
    config.seqLen = 64;
    config.windowsPerRegion = 2;
    config.epochs = 80;
    config.batchSize = 8;
    config.learningRate = 1e-2;
    config.threads = 4;
    return config;
}

TEST(Tao, EncodeWindowShapeAndContent)
{
    TaoModel model(tinyConfig(), UarchParams::armN1());
    RegionSpec spec{programIdByCode("S5"), 0, 0, 1};
    RegionAnalysis analysis(spec, 1);
    std::vector<float> block;
    model.encodeWindow(analysis, 0, block);
    ASSERT_EQ(block.size(), 64u * kTaoInstrDim);
    // Every instruction has exactly one type bit set.
    for (size_t t = 0; t < 64; ++t) {
        float type_bits = 0;
        for (size_t k = 0; k < 9; ++k)
            type_bits += block[t * kTaoInstrDim + k];
        EXPECT_EQ(type_bits, 1.0f);
    }
}

TEST(Tao, PredictIsDeterministic)
{
    TaoModel model(tinyConfig(), UarchParams::armN1());
    RegionSpec spec{programIdByCode("S7"), 0, 2, 1};
    RegionAnalysis a(spec, 1), b(spec, 1);
    EXPECT_EQ(model.predictCpi(a), model.predictCpi(b));
}

TEST(Tao, TrainingReducesError)
{
    // Train on a handful of regions whose CPIs differ and verify that the
    // fitted model beats the untrained one on its own training set.
    const UarchParams n1 = UarchParams::armN1();
    std::vector<RegionSpec> regions;
    std::vector<float> labels;
    Rng rng(17);
    for (int i = 0; i < 12; ++i) {
        const RegionSpec spec = sampleRegion(rng, 1);
        RegionAnalysis analysis(spec, 1);
        regions.push_back(spec);
        labels.push_back(
            static_cast<float>(simulateRegion(n1, analysis).cpi()));
    }

    TaoModel model(tinyConfig(), n1);
    auto rel_err = [&](TaoModel &m) {
        double acc = 0;
        for (size_t i = 0; i < regions.size(); ++i) {
            RegionAnalysis analysis(regions[i], 1);
            acc += std::abs(m.predictCpi(analysis) - labels[i])
                / labels[i];
        }
        return acc / regions.size();
    };

    const double before = rel_err(model);
    model.train(regions, labels);
    const double after = rel_err(model);
    EXPECT_LT(after, before);
    EXPECT_LT(after, 0.6);
}

TEST(Tao, SaveLoadRoundTrip)
{
    TaoModel model(tinyConfig(), UarchParams::armN1());
    const std::string path = "/tmp/concorde_test_tao.bin";
    model.save(path);
    TaoModel loaded = TaoModel::load(path);
    EXPECT_TRUE(loaded.valid());
    RegionSpec spec{programIdByCode("P8"), 0, 1, 1};
    RegionAnalysis a(spec, 1), b(spec, 1);
    EXPECT_EQ(model.predictCpi(a), loaded.predictCpi(b));
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace concorde
