/**
 * @file
 * Tests for the branch predictors: Simple's calibrated randomness, TAGE's
 * learning behavior on loops / biases / history patterns, the indirect
 * last-target predictor, and the shared mispredict-flag pipeline.
 */

#include <gtest/gtest.h>

#include "branch/predictor.hh"
#include "branch/simple_bp.hh"
#include "analysis/trace_analyzer.hh"
#include "branch/tage.hh"
#include "common/rng.hh"
#include "trace/workloads.hh"

namespace concorde
{
namespace
{

double
tageMispredictRate(const std::function<bool(int, Rng &)> &pattern, int n)
{
    Tage tage;
    Rng rng(123);
    int wrong = 0;
    for (int i = 0; i < n; ++i) {
        const bool taken = pattern(i, rng);
        wrong += tage.predictAndUpdate(0x4000, taken) != taken;
    }
    return static_cast<double>(wrong) / n;
}

TEST(Tage, LearnsFixedTripLoops)
{
    // TTTTN repeating: short history captures the exit perfectly.
    const double rate = tageMispredictRate(
        [](int i, Rng &) { return (i % 5) != 4; }, 20000);
    EXPECT_LT(rate, 0.01);
}

TEST(Tage, LearnsLongerLoops)
{
    const double rate = tageMispredictRate(
        [](int i, Rng &) { return (i % 33) != 32; }, 40000);
    EXPECT_LT(rate, 0.05);
}

TEST(Tage, TracksStrongBias)
{
    const double rate = tageMispredictRate(
        [](int, Rng &rng) { return rng.nextBool(0.97); }, 30000);
    EXPECT_LT(rate, 0.05);
}

TEST(Tage, RandomBranchesNearHalf)
{
    const double rate = tageMispredictRate(
        [](int, Rng &rng) { return rng.nextBool(0.5); }, 30000);
    EXPECT_GT(rate, 0.40);
    EXPECT_LT(rate, 0.60);
}

TEST(Tage, LearnsHistoryCorrelation)
{
    // Outcome equals the outcome two branches ago: pure history pattern
    // that a bimodal predictor cannot learn.
    Tage tage;
    bool h1 = true, h2 = false;
    int wrong = 0;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
        const bool taken = h2;
        wrong += tage.predictAndUpdate(0x4000, taken) != taken;
        h2 = h1;
        h1 = taken;
    }
    EXPECT_LT(static_cast<double>(wrong) / n, 0.05);
}

TEST(Tage, ManyInterleavedBranches)
{
    Tage tage;
    Rng rng(9);
    int wrong = 0;
    const int n = 120000;
    for (int i = 0; i < n; ++i) {
        const uint64_t pc = 0x4000 + (i % 151) * 8;
        const bool biased = (pc >> 3) % 3 != 0;
        const bool taken =
            biased ? rng.nextBool(0.95) : ((i / 151) % 4 != 3);
        wrong += tage.predictAndUpdate(pc, taken) != taken;
    }
    EXPECT_LT(static_cast<double>(wrong) / n, 0.08);
}

TEST(SimpleBp, RateIsCalibrated)
{
    SimpleBp bp(20, 42);
    int wrong = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        wrong += bp.predictAndUpdate(0x4000, true) != true;
    EXPECT_NEAR(static_cast<double>(wrong) / n, 0.20, 0.01);
}

TEST(SimpleBp, ZeroRateIsPerfect)
{
    SimpleBp bp(0, 42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(bp.predictAndUpdate(0x4000, true));
}

TEST(SimpleBp, HundredRateAlwaysWrong)
{
    SimpleBp bp(100, 42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(bp.predictAndUpdate(0x4000, true));
}

TEST(Indirect, LastTargetPredictorRepeats)
{
    Tage tage;
    EXPECT_FALSE(tage.predictIndirect(0x8000, 3));  // cold
    EXPECT_TRUE(tage.predictIndirect(0x8000, 3));
    EXPECT_FALSE(tage.predictIndirect(0x8000, 4));  // target changed
    EXPECT_TRUE(tage.predictIndirect(0x8000, 4));
}

TEST(MispredictFlags, OnlyBranchesFlagged)
{
    RegionSpec spec{programIdByCode("S4"), 0, 0, 2};
    const auto region = generateRegion(spec);
    BranchConfig config;
    config.type = BranchConfig::Type::Tage;
    const auto flags = computeMispredicts({}, region, config, 1);
    ASSERT_EQ(flags.size(), region.size());
    for (size_t i = 0; i < region.size(); ++i) {
        if (!region[i].isBranch()) {
            EXPECT_EQ(flags[i], 0);
        }
        if (region[i].branchKind == BranchKind::DirectUncond) {
            EXPECT_EQ(flags[i], 0) << "unconditional cannot mispredict";
        }
    }
}

TEST(MispredictFlags, DeterministicAcrossCalls)
{
    RegionSpec spec{programIdByCode("S6"), 0, 3, 2};
    const auto region = generateRegion(spec);
    BranchConfig config;
    config.type = BranchConfig::Type::Tage;
    const auto a = computeMispredicts({}, region, config, 7);
    const auto b = computeMispredicts({}, region, config, 7);
    EXPECT_EQ(a, b);
}

TEST(MispredictFlags, WarmupLowersColdMisses)
{
    RegionSpec spec{programIdByCode("S5"), 0, 8, 2};
    const auto region = generateRegion(spec);
    RegionSpec warm_spec = spec;
    warm_spec.startChunk = 6;
    const auto warmup = generateRegion(warm_spec);
    BranchConfig config;
    config.type = BranchConfig::Type::Tage;
    const auto cold = computeMispredicts({}, region, config, 7);
    const auto warm = computeMispredicts(warmup, region, config, 7);
    uint64_t cold_misses = 0, warm_misses = 0;
    for (size_t i = 0; i < region.size(); ++i) {
        cold_misses += cold[i];
        warm_misses += warm[i];
    }
    EXPECT_LE(warm_misses, cold_misses);
}

TEST(MispredictFlags, SimpleRateMatchesParameter)
{
    RegionSpec spec{programIdByCode("S10"), 0, 0, 4};
    const auto region = generateRegion(spec);
    BranchConfig config;
    config.type = BranchConfig::Type::Simple;
    config.simpleMispredictPct = 30;
    const auto flags = computeMispredicts({}, region, config, 3);
    uint64_t branches = 0, misses = 0;
    for (size_t i = 0; i < region.size(); ++i) {
        if (region[i].isBranch()
            && region[i].branchKind != BranchKind::DirectUncond) {
            ++branches;
            misses += flags[i];
        }
    }
    EXPECT_NEAR(static_cast<double>(misses) / branches, 0.30, 0.03);
}

class RealProgramTage : public ::testing::TestWithParam<const char *>
{
};

TEST_P(RealProgramTage, RatesAreInPlausibleBand)
{
    const int pid = programIdByCode(GetParam());
    ASSERT_GE(pid, 0);
    RegionSpec spec{pid, 0, 2, 4};
    const auto region = generateRegion(spec);
    BranchConfig config;
    config.type = BranchConfig::Type::Tage;
    const auto flags = computeMispredicts({}, region, config, 5);
    uint64_t branches = 0, misses = 0;
    for (size_t i = 0; i < region.size(); ++i) {
        if (region[i].isBranch()
            && region[i].branchKind != BranchKind::DirectUncond) {
            ++branches;
            misses += flags[i];
        }
    }
    const double rate = static_cast<double>(misses) / branches;
    EXPECT_GT(rate, 0.001);
    EXPECT_LT(rate, 0.25);
}

INSTANTIATE_TEST_SUITE_P(Programs, RealProgramTage,
                         ::testing::Values("O1", "S4", "S5", "S8", "P10",
                                           "P5", "C2"));

TEST(Tage, PredictableBeatsUnpredictableProgram)
{
    // TAGE must separate the corpus: a predictable program (O1) has a far
    // lower mispredict rate than a mispredict-heavy one (S4).
    auto rate_for = [](const char *code) {
        RegionSpec spec{programIdByCode(code), 0, 2, 4};
        RegionAnalysis analysis(spec, 1);
        BranchConfig config;
        config.type = BranchConfig::Type::Tage;
        return analysis.branches(config).mispredictRate();
    };
    EXPECT_LT(rate_for("O1") * 3.0, rate_for("S4"));
}

TEST(Tage, ColdStartWorseThanWarm)
{
    // The same branch stream predicted twice: the second pass (warm
    // tables) must not be worse.
    RegionSpec spec{programIdByCode("S6"), 0, 4, 2};
    const auto region = generateRegion(spec);
    BranchConfig config;
    config.type = BranchConfig::Type::Tage;
    const auto cold = computeMispredicts({}, region, config, 3);
    const auto warm = computeMispredicts(region, region, config, 3);
    uint64_t cold_misses = 0, warm_misses = 0;
    for (size_t i = 0; i < region.size(); ++i) {
        cold_misses += cold[i];
        warm_misses += warm[i];
    }
    EXPECT_LE(warm_misses, cold_misses);
}

TEST(Tage, ManyAliasedBranchesDegradeGracefully)
{
    // Thousands of distinct branch PCs (beyond table capacity): accuracy
    // degrades but stays above chance on biased streams.
    Tage tage;
    Rng rng(31);
    int wrong = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const uint64_t pc = 0x10000 + (rng.next() % 6000) * 4;
        const bool taken = rng.nextBool(0.9);
        wrong += tage.predictAndUpdate(pc, taken) != taken;
    }
    EXPECT_LT(static_cast<double>(wrong) / n, 0.25);
}

} // anonymous namespace
} // namespace concorde
