/**
 * @file
 * Tests for the dataset builder and the Concorde predictor API.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/serialize.hh"
#include "core/concorde.hh"
#include "core/dataset.hh"

namespace concorde
{
namespace
{

DatasetConfig
smallConfig(size_t n, uint64_t seed)
{
    DatasetConfig config;
    config.numSamples = n;
    config.regionChunks = 2;
    config.seed = seed;
    return config;
}

TEST(Dataset, BuildPopulatesEverything)
{
    const Dataset data = buildDataset(smallConfig(12, 1));
    const FeatureLayout layout{FeatureConfig{}};
    EXPECT_EQ(data.size(), 12u);
    EXPECT_EQ(data.dim, layout.dim());
    EXPECT_EQ(data.features.size(), 12 * layout.dim());
    for (size_t i = 0; i < data.size(); ++i) {
        EXPECT_GT(data.labels[i], 0.0f);
        EXPECT_EQ(data.labels[i], data.meta[i].cpi);
        EXPECT_GT(data.meta[i].execRatio, 0.0f);
        EXPECT_GE(data.meta[i].avgRobOcc, 0.0f);
        EXPECT_LE(data.meta[i].avgRobOcc, 100.0f);
    }
}

TEST(Dataset, DeterministicAcrossThreadCounts)
{
    DatasetConfig config = smallConfig(8, 2);
    config.threads = 1;
    const Dataset serial = buildDataset(config);
    config.threads = 8;
    const Dataset parallel = buildDataset(config);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial.labels[i], parallel.labels[i]);
        EXPECT_EQ(serial.meta[i].region.startChunk,
                  parallel.meta[i].region.startChunk);
    }
    EXPECT_EQ(serial.features, parallel.features);
}

TEST(Dataset, FixedUarchIsRespected)
{
    DatasetConfig config = smallConfig(6, 3);
    config.useFixedUarch = true;
    config.fixedUarch = UarchParams::armN1();
    const Dataset data = buildDataset(config);
    for (const auto &meta : data.meta)
        EXPECT_TRUE(meta.params == UarchParams::armN1());
}

TEST(Dataset, ProgramFilterIsRespected)
{
    DatasetConfig config = smallConfig(10, 4);
    config.programFilter = {2, 5};
    const Dataset data = buildDataset(config);
    for (const auto &meta : data.meta) {
        EXPECT_TRUE(meta.region.programId == 2
                    || meta.region.programId == 5);
    }
}

TEST(Dataset, SubsetSelectsRows)
{
    const Dataset data = buildDataset(smallConfig(10, 5));
    const Dataset sub = data.subset({1, 3, 7});
    ASSERT_EQ(sub.size(), 3u);
    EXPECT_EQ(sub.labels[0], data.labels[1]);
    EXPECT_EQ(sub.labels[2], data.labels[7]);
    for (size_t d = 0; d < data.dim; ++d)
        EXPECT_EQ(sub.row(1)[d], data.row(3)[d]);
}

TEST(Dataset, SaveLoadRoundTrip)
{
    const std::string path = "/tmp/concorde_test_dataset.bin";
    const Dataset data = buildDataset(smallConfig(6, 6));
    data.save(path);
    const Dataset loaded = Dataset::load(path);
    EXPECT_EQ(loaded.size(), data.size());
    EXPECT_EQ(loaded.dim, data.dim);
    EXPECT_EQ(loaded.features, data.features);
    EXPECT_EQ(loaded.labels, data.labels);
    EXPECT_EQ(loaded.meta[2].region.programId,
              data.meta[2].region.programId);
    std::remove(path.c_str());
}

namespace
{

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // namespace

TEST(Dataset, SaveLoadSaveIsByteIdentical)
{
    // The field-wise v2 format must round-trip exactly: save -> load ->
    // save produces the same bytes, so shard files are comparable with
    // a plain byte diff and resumed builds can be checked bitwise.
    const std::string path_a = "/tmp/concorde_test_dataset_a.bin";
    const std::string path_b = "/tmp/concorde_test_dataset_b.bin";
    const Dataset data = buildDataset(smallConfig(5, 16));
    data.save(path_a);
    Dataset::load(path_a).save(path_b);
    EXPECT_EQ(fileBytes(path_a), fileBytes(path_b));
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(Dataset, LegacyRawStructFormatStillLoads)
{
    // Pre-v2 cache files (committed bench-artifacts) carry raw
    // SampleMeta bytes behind the old magic; the loader must keep
    // accepting them.
    const std::string path = "/tmp/concorde_test_dataset_legacy.bin";
    const Dataset data = buildDataset(smallConfig(4, 17));
    {
        BinaryWriter out(path);
        out.put<uint64_t>(0xC04C08DEULL);   // legacy magic
        out.put<uint64_t>(data.dim);
        out.putVector(data.features);
        out.putVector(data.labels);
        out.putVector(data.meta);           // raw struct bytes
    }
    const Dataset loaded = Dataset::load(path);
    EXPECT_EQ(loaded.dim, data.dim);
    EXPECT_EQ(loaded.features, data.features);
    EXPECT_EQ(loaded.labels, data.labels);
    ASSERT_EQ(loaded.meta.size(), data.meta.size());
    for (size_t i = 0; i < data.meta.size(); ++i) {
        EXPECT_TRUE(loaded.meta[i].params == data.meta[i].params);
        EXPECT_EQ(loaded.meta[i].region.startChunk,
                  data.meta[i].region.startChunk);
        EXPECT_EQ(loaded.meta[i].cpi, data.meta[i].cpi);
    }
    std::remove(path.c_str());
}

TEST(Dataset, AppendConcatenatesRows)
{
    const Dataset a = buildDataset(smallConfig(3, 18));
    const Dataset b = buildDataset(smallConfig(4, 19));
    Dataset joined;
    joined.append(a);
    joined.append(b);
    ASSERT_EQ(joined.size(), 7u);
    EXPECT_EQ(joined.dim, a.dim);
    EXPECT_EQ(joined.labels[1], a.labels[1]);
    EXPECT_EQ(joined.labels[4], b.labels[1]);
    for (size_t d = 0; d < a.dim; ++d) {
        EXPECT_EQ(joined.row(3)[d], b.row(0)[d]);
    }
}

TEST(UarchParams, FieldWiseSaveLoadRoundTrip)
{
    Rng rng(77);
    const std::string path = "/tmp/concorde_test_params.bin";
    for (int i = 0; i < 8; ++i) {
        const UarchParams params = UarchParams::sampleRandom(rng);
        {
            BinaryWriter out(path);
            params.save(out);
        }
        BinaryReader in(path);
        const UarchParams loaded = UarchParams::load(in);
        EXPECT_TRUE(loaded == params);
        EXPECT_EQ(loaded.hashKey(), params.hashKey());
    }
    std::remove(path.c_str());
}

TEST(Dataset, AlternativeLabelVectors)
{
    const Dataset data = buildDataset(smallConfig(5, 7));
    const auto rob = data.robOccLabels();
    const auto rename = data.renameOccLabels();
    ASSERT_EQ(rob.size(), 5u);
    for (size_t i = 0; i < rob.size(); ++i) {
        EXPECT_EQ(rob[i], data.meta[i].avgRobOcc);
        EXPECT_EQ(rename[i], data.meta[i].avgRenameOcc);
    }
}

TEST(Dataset, LabelsVaryAcrossSamples)
{
    const Dataset data = buildDataset(smallConfig(16, 8));
    float lo = data.labels[0], hi = data.labels[0];
    for (float y : data.labels) {
        lo = std::min(lo, y);
        hi = std::max(hi, y);
    }
    EXPECT_GT(hi, lo * 1.2) << "random (region, uarch) pairs must vary";
}

TEST(Predictor, ProviderAndOneShotAgree)
{
    const Dataset data = buildDataset(smallConfig(40, 9));
    TrainConfig tc;
    tc.epochs = 4;
    tc.threads = 4;
    TrainedModel model =
        trainMlp(data.features, data.labels, data.dim, tc);
    ConcordePredictor predictor(std::move(model), FeatureConfig{});

    const RegionSpec spec = data.meta[0].region;
    const UarchParams &params = data.meta[0].params;
    FeatureProvider provider(spec, FeatureConfig{});
    const double via_provider = predictor.predictCpi(provider, params);
    const double one_shot = predictor.predictCpi(spec, params);
    EXPECT_DOUBLE_EQ(via_provider, one_shot);
    EXPECT_GT(via_provider, 0.0);
}

TEST(Predictor, SaveLoadPreservesPredictions)
{
    const Dataset data = buildDataset(smallConfig(30, 10));
    TrainConfig tc;
    tc.epochs = 3;
    tc.threads = 4;
    TrainedModel model =
        trainMlp(data.features, data.labels, data.dim, tc);
    ConcordePredictor predictor(std::move(model), FeatureConfig{});
    const std::string path = "/tmp/concorde_test_predictor.bin";
    predictor.save(path);
    const ConcordePredictor loaded = ConcordePredictor::load(path);
    const RegionSpec spec = data.meta[1].region;
    EXPECT_EQ(predictor.predictCpi(spec, data.meta[1].params),
              loaded.predictCpi(spec, data.meta[1].params));
    std::remove(path.c_str());
}

TEST(Predictor, LongProgramAveragesSamples)
{
    const Dataset data = buildDataset(smallConfig(30, 11));
    TrainConfig tc;
    tc.epochs = 3;
    tc.threads = 4;
    TrainedModel model =
        trainMlp(data.features, data.labels, data.dim, tc);
    ConcordePredictor predictor(std::move(model), FeatureConfig{});
    const double estimate = predictor.predictLongProgram(
        UarchParams::armN1(), 0, 0, 64, 3, 2, 123);
    EXPECT_GT(estimate, 0.0);
    // Determinism.
    EXPECT_EQ(estimate, predictor.predictLongProgram(
        UarchParams::armN1(), 0, 0, 64, 3, 2, 123));
}

} // anonymous namespace
} // namespace concorde
