/**
 * @file
 * Multi-process scale-out tests: ProcessPool lifecycle (exit capture,
 * signals, bounded respawn), unique staging names and crash-debris
 * repair in dataset directories, corrupt-shard rejection, and the CLI
 * supervisor/worker protocol -- N-worker dataset generation and sweep
 * merges must be bitwise-identical to a serial run, including after a
 * worker is SIGKILLed mid-shard or crash-injected and respawned.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/process_pool.hh"
#include "common/serialize.hh"
#include "core/artifacts.hh"
#include "core/dataset.hh"
#include "core/model_artifact.hh"

namespace concorde
{
namespace
{

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::string
freshDir(const std::string &name)
{
    const std::string dir = "/tmp/concorde_scaleout_" + name;
    const std::string cmd = "rm -rf '" + dir + "' && mkdir -p '" + dir + "'";
    EXPECT_EQ(std::system(cmd.c_str()), 0);
    return dir;
}

/** Entries of `dir` whose names contain `needle`. */
std::vector<std::string>
entriesContaining(const std::string &dir, const std::string &needle)
{
    const std::string listing = dir + "/.listing";
    const std::string cmd = "ls -1 '" + dir + "' > '" + listing + "'";
    EXPECT_EQ(std::system(cmd.c_str()), 0);
    std::ifstream in(listing);
    std::vector<std::string> hits;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find(needle) != std::string::npos)
            hits.push_back(line);
    }
    std::remove(listing.c_str());
    return hits;
}

/** A pid guaranteed dead: a forked child that exits and is reaped. */
pid_t
deadChildPid()
{
    const pid_t pid = ::fork();
    if (pid == 0)
        ::_exit(0);
    int status = 0;
    ::waitpid(pid, &status, 0);
    return pid;
}

void
touch(const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    out << "x";
}

// ---- ProcessPool ----

TEST(ProcessPool, CapturesExitCodes)
{
    ProcessPool pool;
    pool.spawn({"/bin/sh", "-c", "exit 0"});
    const ProcessExit ok = pool.waitAny();
    EXPECT_TRUE(ok.success());
    EXPECT_TRUE(ok.exited);
    EXPECT_EQ(ok.exitCode, 0);

    pool.spawn({"/bin/sh", "-c", "exit 3"});
    const ProcessExit bad = pool.waitAny();
    EXPECT_FALSE(bad.success());
    EXPECT_TRUE(bad.exited);
    EXPECT_EQ(bad.exitCode, 3);
    EXPECT_EQ(bad.describe(), "exit 3");
    EXPECT_EQ(pool.running(), 0u);
}

TEST(ProcessPool, ReportsSignaledChildren)
{
    ProcessPool pool;
    const pid_t pid = pool.spawn({"/bin/sleep", "30"});
    EXPECT_EQ(pool.running(), 1u);
    ::kill(pid, SIGKILL);
    const ProcessExit child = pool.waitAny();
    EXPECT_EQ(child.pid, pid);
    EXPECT_TRUE(child.signaled);
    EXPECT_EQ(child.termSignal, SIGKILL);
    EXPECT_FALSE(child.success());
}

TEST(ProcessPool, ExecFailureSurfacesAsExit127)
{
    ProcessPool pool;
    pool.spawn({"/nonexistent/binary/for/sure"});
    const ProcessExit child = pool.waitAny();
    EXPECT_TRUE(child.exited);
    EXPECT_EQ(child.exitCode, 127);
}

TEST(ProcessPool, SuperviseRespawnsCrashedPartitionsUntilSuccess)
{
    // The partition fails on its first run (no marker yet) and succeeds
    // on the respawn -- the shape of a resumable worker that died once.
    const std::string dir = freshDir("respawn");
    const std::string marker = dir + "/marker";
    const std::string script =
        "test -f '" + marker + "' || { touch '" + marker + "'; exit 1; }";
    ProcessPool pool;
    EXPECT_TRUE(pool.superviseAll({{"/bin/sh", "-c", script}}, 3));
    EXPECT_TRUE(fileExists(marker));
}

TEST(ProcessPool, SuperviseGivesUpAfterRespawnBudget)
{
    ProcessPool pool;
    EXPECT_FALSE(pool.superviseAll({{"/bin/sh", "-c", "exit 1"}}, 1));
    EXPECT_EQ(pool.running(), 0u);
}

// ---- unique staging names ----

TEST(UniqueTmpName, EmbedsPidAndNeverRepeats)
{
    const std::string a = uniqueTmpName("/tmp/x/final.bin");
    const std::string b = uniqueTmpName("/tmp/x/final.bin");
    EXPECT_NE(a, b);
    EXPECT_EQ(a.rfind("/tmp/x/final.bin.tmp.", 0), 0u);
    // The writer's pid is embedded, so stale files are attributable.
    const std::string pid_tag = ".tmp." + std::to_string(::getpid()) + ".";
    EXPECT_NE(a.find(pid_tag), std::string::npos);
}

// ---- crash-debris repair and corrupt-shard rejection ----

TEST(RepairDatasetDir, ReclaimsDeadWritersAndCorruptShardsOnly)
{
    DatasetConfig config;
    config.numSamples = 9;
    config.regionChunks = 2;
    config.seed = 6001;
    const std::string dir = freshDir("repair");
    const std::string ref = freshDir("repair_ref");
    ASSERT_TRUE(buildDatasetShards(config, dir, 3).complete());
    ASSERT_TRUE(buildDatasetShards(config, ref, 3).complete());
    const DatasetManifest manifest =
        DatasetManifest::load(DatasetManifest::manifestFile(dir));
    ASSERT_EQ(manifest.numShards(), 3u);

    // Crash debris: a staging file from a dead writer, a legacy
    // fixed-name staging file, and a staging file from a *live* writer
    // (this process) that must survive the repair.
    const std::string dead_tmp = DatasetManifest::shardFile(dir, 0)
        + ".tmp." + std::to_string(deadChildPid()) + ".0";
    const std::string legacy_tmp =
        DatasetManifest::shardFile(dir, 0) + ".tmp";
    const std::string live_tmp = uniqueTmpName(
        DatasetManifest::shardFile(dir, 1));
    touch(dead_tmp);
    touch(legacy_tmp);
    touch(live_tmp);

    // Corruption: shard 1 gets a garbage magic, shard 2 is zero-length
    // (the footprint of a pre-durability crash).
    touch(DatasetManifest::shardFile(dir, 1));
    {
        std::ofstream out(DatasetManifest::shardFile(dir, 2),
                          std::ios::binary | std::ios::trunc);
    }
    EXPECT_TRUE(datasetShardValid(DatasetManifest::shardFile(dir, 0)));
    EXPECT_FALSE(datasetShardValid(DatasetManifest::shardFile(dir, 1)));
    EXPECT_FALSE(datasetShardValid(DatasetManifest::shardFile(dir, 2)));

    // 4 removals: dead tmp, legacy tmp, two corrupt shards.
    EXPECT_EQ(repairDatasetDir(dir, manifest), 4u);
    EXPECT_FALSE(fileExists(dead_tmp));
    EXPECT_FALSE(fileExists(legacy_tmp));
    EXPECT_TRUE(fileExists(live_tmp)) << "live writer's staging file "
                                         "must not be reclaimed";
    const std::vector<size_t> missing = missingDatasetShards(dir, manifest);
    EXPECT_EQ(missing, (std::vector<size_t>{1, 2}));

    // Regeneration restores the exact serial bytes.
    EXPECT_TRUE(buildDatasetShards(config, dir, 3).complete());
    for (size_t s = 0; s < manifest.numShards(); ++s) {
        EXPECT_EQ(fileBytes(DatasetManifest::shardFile(dir, s)),
                  fileBytes(DatasetManifest::shardFile(ref, s)))
            << "shard " << s;
    }
    std::remove(live_tmp.c_str());
}

TEST(ShardedDatasetDeathTest, LoadRejectsCorruptShard)
{
    DatasetConfig config;
    config.numSamples = 6;
    config.regionChunks = 2;
    config.seed = 6002;
    const std::string dir = freshDir("corrupt_load");
    ASSERT_TRUE(buildDatasetShards(config, dir, 3).complete());
    {
        std::ofstream out(DatasetManifest::shardFile(dir, 1),
                          std::ios::binary | std::ios::trunc);
    }
    EXPECT_EXIT(loadDatasetShards(dir), ::testing::ExitedWithCode(1),
                "corrupt");
}

// ---- CLI supervisor/worker protocol ----

#ifdef CONCORDE_CLI_PATH

int
cliExitCode(const std::string &args)
{
    const std::string cmd =
        std::string(CONCORDE_CLI_PATH) + " " + args + " >/dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    EXPECT_NE(status, -1);
    return WEXITSTATUS(status);
}

/** The dataset config the CLI builds for `samples= chunks=2 seed=`. */
DatasetConfig
cliDatasetConfig(size_t samples, uint64_t seed)
{
    DatasetConfig config;
    config.numSamples = samples;
    config.regionChunks = 2;
    config.seed = seed;
    config.features = artifacts::featureConfig();
    return config;
}

void
expectDirsByteIdentical(const std::string &dir, const std::string &ref)
{
    EXPECT_EQ(fileBytes(DatasetManifest::manifestFile(dir)),
              fileBytes(DatasetManifest::manifestFile(ref)));
    const DatasetManifest manifest =
        DatasetManifest::load(DatasetManifest::manifestFile(ref));
    for (size_t s = 0; s < manifest.numShards(); ++s) {
        EXPECT_EQ(fileBytes(DatasetManifest::shardFile(dir, s)),
                  fileBytes(DatasetManifest::shardFile(ref, s)))
            << "shard " << s;
    }
    EXPECT_TRUE(entriesContaining(dir, ".tmp").empty())
        << "staging debris left behind";
}

TEST(CliScaleout, DatasetWorkersBitwiseIdenticalToSerial)
{
    const DatasetConfig config = cliDatasetConfig(12, 7001);
    const std::string ref = freshDir("cli_ref");
    ASSERT_TRUE(buildDatasetShards(config, ref, 4).complete());

    const std::string dir = freshDir("cli_workers");
    ASSERT_EQ(cliExitCode("dataset out=" + dir + " samples=12 shard=4 "
                          "chunks=2 seed=7001 workers=2"), 0);
    expectDirsByteIdentical(dir, ref);

    // A complete directory re-supervised is a no-op, still exit 0.
    EXPECT_EQ(cliExitCode("dataset out=" + dir + " samples=12 shard=4 "
                          "chunks=2 seed=7001 workers=2"), 0);
    expectDirsByteIdentical(dir, ref);
}

TEST(CliScaleout, SigkilledWorkerLeavesNoCorruptShardAndSupervisorRecovers)
{
    // Many small shards so the kill lands mid-run with high probability.
    const DatasetConfig config = cliDatasetConfig(24, 7002);
    const std::string ref = freshDir("kill_ref");
    ASSERT_TRUE(buildDatasetShards(config, ref, 2).complete());

    const std::string dir = freshDir("kill_workers");
    std::string all_shards;
    for (size_t s = 0; s < 12; ++s) {
        if (!all_shards.empty())
            all_shards.push_back(',');
        all_shards += std::to_string(s);
    }
    ProcessPool pool;
    pool.spawn({CONCORDE_CLI_PATH, "dataset-worker", "out=" + dir,
                "samples=24", "shard=2", "chunks=2", "seed=7002",
                "shards=" + all_shards});
    // SIGKILL the worker as soon as its first shard publishes -- it is
    // then mid-way through the next one.
    for (int i = 0; i < 60000; ++i) {
        if (fileExists(DatasetManifest::shardFile(dir, 0)))
            break;
        ::usleep(1000);
    }
    ASSERT_TRUE(fileExists(DatasetManifest::shardFile(dir, 0)))
        << "worker never published a shard";
    pool.signalAll(SIGKILL);
    (void)pool.waitAny();

    // Atomic durable publish: whatever shards exist are complete and
    // byte-identical to the serial build; nothing torn survives.
    size_t published = 0;
    for (size_t s = 0; s < 12; ++s) {
        const std::string path = DatasetManifest::shardFile(dir, s);
        if (!fileExists(path))
            continue;
        ++published;
        EXPECT_TRUE(datasetShardValid(path)) << path;
        EXPECT_EQ(fileBytes(path),
                  fileBytes(DatasetManifest::shardFile(ref, s)))
            << "shard " << s;
    }
    EXPECT_GE(published, 1u);

    // The supervisor resumes the dead worker's partition to completion.
    ASSERT_EQ(cliExitCode("dataset out=" + dir + " samples=24 shard=2 "
                          "chunks=2 seed=7002 workers=2"), 0);
    expectDirsByteIdentical(dir, ref);
}

TEST(CliScaleout, CrashInjectedWorkersConvergeUnderSupervision)
{
    const DatasetConfig config = cliDatasetConfig(12, 7003);
    const std::string ref = freshDir("crash_ref");
    ASSERT_TRUE(buildDatasetShards(config, ref, 4).complete());

    // Every worker dies after publishing one shard; the supervisor must
    // keep respawning them until the directory is complete.
    const std::string dir = freshDir("crash_workers");
    ASSERT_EQ(::setenv("CONCORDE_WORKER_CRASH_AFTER_SHARDS", "1", 1), 0);
    const int code = cliExitCode("dataset out=" + dir + " samples=12 "
                                 "shard=4 chunks=2 seed=7003 workers=2 "
                                 "respawns=8");
    ASSERT_EQ(::unsetenv("CONCORDE_WORKER_CRASH_AFTER_SHARDS"), 0);
    ASSERT_EQ(code, 0);
    expectDirsByteIdentical(dir, ref);
}

TEST(CliScaleout, SweepWorkersMergeBitwiseIdenticalToSerial)
{
    const std::string dir = freshDir("sweep");
    const std::string model = dir + "/tiny_artifact.bin";
    ModelArtifact artifact;
    artifact.features = FeatureConfig{};
    artifact.model = artifacts::untrainedModel(artifact.features, 31);
    artifact.save(model);

    const std::string base = "sweep S7 rob model=" + model + " out=" + dir;
    ASSERT_EQ(cliExitCode(base + "/serial.bin"), 0);
    ASSERT_EQ(cliExitCode(base + "/w1.bin workers=1"), 0);
    ASSERT_EQ(cliExitCode(base + "/w2.bin workers=2"), 0);

    const std::string serial = fileBytes(dir + "/serial.bin");
    EXPECT_GT(serial.size(), 8u);
    EXPECT_EQ(serial.substr(0, 8), "CNCSWM01");
    EXPECT_EQ(fileBytes(dir + "/w1.bin"), serial);
    EXPECT_EQ(fileBytes(dir + "/w2.bin"), serial);
    // Part files are consumed by the merge.
    EXPECT_TRUE(entriesContaining(dir, ".part").empty());
}

TEST(CliScaleout, ScaleoutSubcommandsRejectMalformedFlags)
{
    EXPECT_EQ(cliExitCode("dataset out=/tmp/x workers=abc"), 2);
    EXPECT_EQ(cliExitCode("dataset out=/tmp/x workers=2 max_shards=1"), 2)
        << "max_shards bounds one in-process run only";
    EXPECT_EQ(cliExitCode("dataset-worker out=/tmp/x"), 2)
        << "missing shards=";
    EXPECT_EQ(cliExitCode("dataset-worker shards=0"), 2) << "missing out=";
    EXPECT_EQ(cliExitCode("dataset-worker out=/tmp/x shards=0,x"), 2);
    EXPECT_EQ(cliExitCode("sweep S7 rob workers=2"), 2) << "missing out=";
    EXPECT_EQ(cliExitCode("sweep S7 rob workers=abc"), 2);
    EXPECT_EQ(cliExitCode("sweep S7 bogus workers=1 out=/tmp/x.bin"), 2);
    EXPECT_EQ(cliExitCode("sweep-worker S7 rob part=0 nparts=2"), 2)
        << "missing out=";
    EXPECT_EQ(cliExitCode("sweep-worker S7 rob part=2 nparts=2 "
                          "out=/tmp/x.part0"), 2) << "part out of range";
    EXPECT_EQ(cliExitCode("sweep-worker S7 rob out=/tmp/x.part0"), 2)
        << "missing part=/nparts=";
}

#endif // CONCORDE_CLI_PATH

} // anonymous namespace
} // namespace concorde
