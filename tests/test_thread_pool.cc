/**
 * @file
 * Tests for the persistent ThreadPool behind the serve layer: result
 * and exception propagation through futures, shutdown ordering (queued
 * work drains before workers join; submissions after shutdown are
 * rejected), and concurrent submitters.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"

namespace concorde
{
namespace
{

TEST(ThreadPool, ReturnsResultsThroughFutures)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.numThreads(), 3u);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 20; ++i)
        futures.push_back(pool.submit([i]() { return i * i; }));
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, PropagatesTaskExceptions)
{
    ThreadPool pool(2);
    auto bad = pool.submit([]() -> int {
        throw std::runtime_error("task failed");
    });
    auto good = pool.submit([]() { return 7; });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // A throwing task must not kill its worker.
    EXPECT_EQ(good.get(), 7);
    EXPECT_EQ(pool.submit([]() { return 8; }).get(), 8);
}

TEST(ThreadPool, ExceptionMessageSurvives)
{
    ThreadPool pool(1);
    auto f = pool.submit([]() {
        throw std::runtime_error("specific message");
    });
    try {
        f.get();
        FAIL() << "expected exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "specific message");
    }
}

TEST(ThreadPool, ShutdownDrainsQueuedTasksFirst)
{
    // Queue far more slow tasks than workers, shut down immediately,
    // and check every accepted task still ran exactly once.
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futures;
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i) {
            futures.push_back(pool.submit([&ran]() {
                std::this_thread::sleep_for(std::chrono::microseconds(100));
                ++ran;
            }));
        }
        pool.shutdown();
        EXPECT_TRUE(pool.stopped());
    }
    EXPECT_EQ(ran.load(), 64);
    for (auto &f : futures)
        EXPECT_NO_THROW(f.get());
}

TEST(ThreadPool, DestructorImpliesShutdown)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 16; ++i)
            pool.submit([&ran]() { ++ran; });
    }
    EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, SubmitAfterShutdownThrows)
{
    ThreadPool pool(1);
    pool.shutdown();
    EXPECT_THROW(pool.submit([]() { return 1; }), std::runtime_error);
    // shutdown is idempotent.
    EXPECT_NO_THROW(pool.shutdown());
}

TEST(ThreadPool, ManyConcurrentSubmitters)
{
    ThreadPool pool(2);
    std::atomic<int> total{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 6; ++t) {
        submitters.emplace_back([&pool, &total]() {
            std::vector<std::future<void>> futures;
            for (int i = 0; i < 50; ++i)
                futures.push_back(pool.submit([&total]() { ++total; }));
            for (auto &f : futures)
                f.get();
        });
    }
    for (auto &t : submitters)
        t.join();
    EXPECT_EQ(total.load(), 6 * 50);
}

} // anonymous namespace
} // namespace concorde
