/**
 * @file
 * Tests for the batched inference engine: Mlp::forwardBatch,
 * TrainedModel::predictBatch, and ConcordePredictor::predictCpiBatch
 * must match the scalar path within 1e-6, including batch sizes 0, 1,
 * and larger than the thread count. Also covers the versioned
 * predictor file format (FeatureConfig round-trip).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/rng.hh"
#include "core/concorde.hh"
#include "ml/mlp.hh"
#include "ml/trainer.hh"

namespace concorde
{
namespace
{

std::vector<float>
randomMatrix(size_t n, size_t dim, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> xs(n * dim);
    for (auto &v : xs)
        v = static_cast<float>(rng.nextGaussian());
    return xs;
}

TEST(ForwardBatch, MatchesScalarForward)
{
    const std::vector<std::vector<size_t>> shapes = {
        {7, 16, 1}, {32, 48, 24, 1}, {5, 1}, {128, 64, 32, 16, 1}};
    for (size_t s = 0; s < shapes.size(); ++s) {
        Mlp net(shapes[s], 100 + s);
        const size_t dim = shapes[s].front();
        for (size_t n : {size_t(0), size_t(1), size_t(3), size_t(17),
                         size_t(64), size_t(300)}) {
            const auto xs = randomMatrix(n, dim, 7 * n + s);
            std::vector<float> batch(n, -1.0f);
            MlpBatchScratch bscratch;
            net.forwardBatch(xs.data(), n, batch.data(), bscratch);
            auto scratch = net.makeScratch();
            for (size_t i = 0; i < n; ++i) {
                const float scalar =
                    net.forward(xs.data() + i * dim, scratch);
                EXPECT_NEAR(batch[i], scalar,
                            1e-6 * std::max(1.0f, std::abs(scalar)))
                    << "shape " << s << " batch " << n << " row " << i;
            }
        }
    }
}

TEST(ForwardBatch, ScratchIsReusableAcrossSizes)
{
    Mlp net({9, 12, 1}, 3);
    MlpBatchScratch scratch;
    auto sscratch = net.makeScratch();
    // Shrinking and growing the batch must not corrupt results.
    for (size_t n : {size_t(50), size_t(2), size_t(33)}) {
        const auto xs = randomMatrix(n, 9, n);
        std::vector<float> out(n);
        net.forwardBatch(xs.data(), n, out.data(), scratch);
        for (size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(out[i], net.forward(xs.data() + i * 9, sscratch),
                        1e-6);
        }
    }
}

TrainedModel
tinyTrainedModel(size_t dim, uint64_t seed,
                 const std::vector<uint8_t> *mask = nullptr)
{
    Rng rng(seed);
    const size_t n = 200;
    std::vector<float> xs(n * dim);
    std::vector<float> ys(n);
    for (size_t i = 0; i < n; ++i) {
        double acc = 1.0;
        for (size_t d = 0; d < dim; ++d) {
            xs[i * dim + d] = static_cast<float>(rng.nextGaussian());
            acc += 0.1 * d * xs[i * dim + d];
        }
        ys[i] = static_cast<float>(std::abs(acc) + 0.5);
    }
    TrainConfig config;
    config.epochs = 3;
    config.threads = 2;
    config.seed = seed;
    return trainMlp(xs, ys, dim, config, mask);
}

TEST(PredictBatch, MatchesScalarPredict)
{
    const size_t dim = 14;
    const TrainedModel model = tinyTrainedModel(dim, 51);
    for (size_t n : {size_t(0), size_t(1), size_t(257)}) {
        const auto xs = randomMatrix(n, dim, n + 1);
        // More shards than a typical machine has threads.
        const auto batch = model.predictBatch(xs, dim, 16);
        ASSERT_EQ(batch.size(), n);
        for (size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(batch[i], model.predict(xs.data() + i * dim),
                        1e-6);
        }
    }
}

TEST(PredictBatch, RespectsFeatureMask)
{
    const size_t dim = 10;
    std::vector<uint8_t> mask(dim, 0);
    mask[2] = mask[7] = 1;
    const TrainedModel model = tinyTrainedModel(dim, 52, &mask);
    const auto xs = randomMatrix(40, dim, 9);
    const auto batch = model.predictBatch(xs, dim, 4);
    for (size_t i = 0; i < 40; ++i)
        EXPECT_NEAR(batch[i], model.predict(xs.data() + i * dim), 1e-6);
}

/** A predictor around a random (untrained) MLP of the layout's width. */
ConcordePredictor
randomPredictor(const FeatureConfig &cfg, uint64_t seed)
{
    const FeatureLayout layout(cfg);
    Mlp net({layout.dim(), 24, 1}, seed);
    std::vector<float> mean(layout.dim(), 0.0f);
    std::vector<float> stdev(layout.dim(), 1.0f);
    TrainedModel model(std::move(net), std::move(mean), std::move(stdev),
                       {});
    return ConcordePredictor(std::move(model), cfg);
}

TEST(PredictCpiBatch, MatchesScalarPredictCpi)
{
    const ConcordePredictor predictor =
        randomPredictor(FeatureConfig{}, 61);
    RegionSpec spec{0, 0, 0, 2};
    FeatureProvider provider(spec, FeatureConfig{});
    Rng rng(62);

    for (size_t n : {size_t(0), size_t(1), size_t(65)}) {
        std::vector<UarchParams> points;
        for (size_t i = 0; i < n; ++i)
            points.push_back(UarchParams::sampleRandom(rng));
        const auto batch =
            predictor.predictCpiBatch(provider, points, 16);
        ASSERT_EQ(batch.size(), n);
        for (size_t i = 0; i < n; ++i) {
            const double scalar =
                predictor.predictCpi(provider, points[i]);
            EXPECT_NEAR(batch[i], scalar,
                        1e-6 * std::max(1.0, std::abs(scalar)))
                << "batch " << n << " point " << i;
        }
    }
}

TEST(PredictCpiBatch, PointerOverloadAgrees)
{
    const ConcordePredictor predictor =
        randomPredictor(FeatureConfig{}, 63);
    RegionSpec spec{1, 0, 0, 1};
    FeatureProvider provider(spec, FeatureConfig{});
    Rng rng(64);
    std::vector<UarchParams> points;
    for (size_t i = 0; i < 8; ++i)
        points.push_back(UarchParams::sampleRandom(rng));
    const auto a = predictor.predictCpiBatch(provider, points);
    const auto b =
        predictor.predictCpiBatch(provider, points.data(), points.size());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(PredictorSaveLoad, RoundTripsNonDefaultFeatureConfig)
{
    FeatureConfig cfg;
    cfg.windowK = 200;
    cfg.numPercentiles = 9;
    cfg.robSweep = {2, 8, 32, 128};
    cfg.latencyRobSizes = {4, 64};
    const ConcordePredictor predictor = randomPredictor(cfg, 71);

    const std::string path = "/tmp/concorde_test_batch_predictor.bin";
    predictor.save(path);
    const ConcordePredictor loaded = ConcordePredictor::load(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.featureConfig().windowK, cfg.windowK);
    EXPECT_EQ(loaded.featureConfig().numPercentiles, cfg.numPercentiles);
    EXPECT_EQ(loaded.featureConfig().robSweep, cfg.robSweep);
    EXPECT_EQ(loaded.featureConfig().latencyRobSizes,
              cfg.latencyRobSizes);
    EXPECT_EQ(loaded.layout().dim(), predictor.layout().dim());

    // Predictions must survive the round trip, through the restored
    // feature configuration (a default-config provider would have the
    // wrong dimensionality entirely).
    RegionSpec spec{2, 0, 0, 1};
    const UarchParams n1 = UarchParams::armN1();
    EXPECT_EQ(predictor.predictCpi(spec, n1),
              loaded.predictCpi(spec, n1));
}

TEST(PredictorSaveLoad, LegacyHeaderlessFilesStillLoad)
{
    // A legacy artifact holds just the TrainedModel; load() must accept
    // it and fall back to the default FeatureConfig.
    const ConcordePredictor predictor =
        randomPredictor(FeatureConfig{}, 72);
    const std::string path = "/tmp/concorde_test_legacy_model.bin";
    predictor.model().save(path);
    const ConcordePredictor loaded = ConcordePredictor::load(path);
    std::remove(path.c_str());
    EXPECT_EQ(loaded.layout().dim(), predictor.layout().dim());
    RegionSpec spec{3, 0, 0, 1};
    const UarchParams n1 = UarchParams::armN1();
    EXPECT_EQ(predictor.predictCpi(spec, n1),
              loaded.predictCpi(spec, n1));
}

} // anonymous namespace
} // namespace concorde
