/**
 * @file
 * Tests for the Table-1 design space: parameter metadata, canonical design
 * points, random sampling, sweep grids, and the ML encoding.
 */

#include <gtest/gtest.h>

#include <set>

#include "uarch/params.hh"

namespace concorde
{
namespace
{

TEST(ParamTable, TwentyParameters)
{
    EXPECT_EQ(paramTable().size(), 20u);
    EXPECT_EQ(kNumParams, 20);
    std::set<ParamId> seen;
    for (const auto &info : paramTable())
        seen.insert(info.id);
    EXPECT_EQ(seen.size(), 20u);
}

TEST(ParamTable, ArmN1MatchesPaperColumn)
{
    const UarchParams n1 = UarchParams::armN1();
    EXPECT_EQ(n1.robSize, 128);
    EXPECT_EQ(n1.commitWidth, 8);
    EXPECT_EQ(n1.lqSize, 12);
    EXPECT_EQ(n1.sqSize, 18);
    EXPECT_EQ(n1.aluWidth, 3);
    EXPECT_EQ(n1.fpWidth, 2);
    EXPECT_EQ(n1.lsWidth, 2);
    EXPECT_EQ(n1.lsPipes, 2);
    EXPECT_EQ(n1.loadPipes, 0);
    EXPECT_EQ(n1.fetchWidth, 4);
    EXPECT_EQ(n1.decodeWidth, 4);
    EXPECT_EQ(n1.renameWidth, 4);
    EXPECT_EQ(n1.fetchBuffers, 1);
    EXPECT_EQ(n1.maxIcacheFills, 8);
    EXPECT_EQ(n1.branch.type, BranchConfig::Type::Tage);
    EXPECT_EQ(n1.memory.l1dKb, 64u);
    EXPECT_EQ(n1.memory.l1iKb, 64u);
    EXPECT_EQ(n1.memory.l2Kb, 1024u);
    EXPECT_EQ(n1.memory.prefetchDegree, 0);
}

TEST(ParamTable, BigCoreIsMaximal)
{
    const UarchParams big = UarchParams::bigCore();
    for (const auto &info : paramTable()) {
        if (info.id == ParamId::BranchPredictor
            || info.id == ParamId::SimpleMispredictPct) {
            continue;   // perfect prediction = Simple @ 0%
        }
        EXPECT_EQ(big.get(info.id), info.maxValue)
            << "param " << info.name;
    }
    EXPECT_EQ(big.branch.type, BranchConfig::Type::Simple);
    EXPECT_EQ(big.branch.simpleMispredictPct, 0);
}

TEST(ParamTable, GetSetRoundTrip)
{
    UarchParams p = UarchParams::armN1();
    for (const auto &info : paramTable()) {
        for (int64_t value : sweepValues(info.id, true)) {
            p.set(info.id, value);
            EXPECT_EQ(p.get(info.id), value) << info.name;
        }
    }
}

TEST(ParamTable, EqualityComparesAllParams)
{
    UarchParams a = UarchParams::armN1();
    UarchParams b = UarchParams::armN1();
    EXPECT_TRUE(a == b);
    b.set(ParamId::RobSize, 256);
    EXPECT_FALSE(a == b);
}

class SweepTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SweepTest, ValuesWithinRangeAndSorted)
{
    const auto &info = paramTable()[GetParam()];
    for (bool quantized : {false, true}) {
        const auto values = sweepValues(info.id, quantized);
        ASSERT_FALSE(values.empty());
        EXPECT_EQ(values.front(), info.minValue);
        EXPECT_EQ(values.back(), info.maxValue);
        for (size_t i = 1; i < values.size(); ++i)
            EXPECT_LT(values[i - 1], values[i]);
        if (!quantized) {
            EXPECT_EQ(values.size(),
                      static_cast<size_t>(info.cardinality));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllParams, SweepTest, ::testing::Range(0, 20));

TEST(DesignSpace, MatchesPaperOrderOfMagnitude)
{
    // Paper: ~2.2e23 full, ~1.8e18 quantized.
    const double full = designSpaceSize(false);
    EXPECT_GT(full, 1e23);
    EXPECT_LT(full, 1e24);
    const double quantized = designSpaceSize(true);
    EXPECT_GT(quantized, 1e17);
    EXPECT_LT(quantized, 1e19);
}

TEST(Sampling, RandomDrawsStayInRange)
{
    Rng rng(5);
    for (int s = 0; s < 300; ++s) {
        const UarchParams p = UarchParams::sampleRandom(rng);
        for (const auto &info : paramTable()) {
            EXPECT_GE(p.get(info.id), info.minValue) << info.name;
            EXPECT_LE(p.get(info.id), info.maxValue) << info.name;
        }
    }
}

TEST(Sampling, CoversBothPredictors)
{
    Rng rng(6);
    int simple = 0, tage = 0;
    for (int s = 0; s < 200; ++s) {
        const UarchParams p = UarchParams::sampleRandom(rng);
        if (p.branch.type == BranchConfig::Type::Simple)
            ++simple;
        else
            ++tage;
    }
    EXPECT_GT(simple, 50);
    EXPECT_GT(tage, 50);
}

TEST(Encoding, DimensionAndRange)
{
    std::vector<float> out;
    encodeParams(UarchParams::armN1(), out);
    ASSERT_EQ(out.size(), kParamEncodingDim);
    for (float v : out) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
    }
}

TEST(Encoding, OneHotsAreConsistent)
{
    std::vector<float> tage_enc, simple_enc;
    UarchParams p = UarchParams::armN1();
    encodeParams(p, tage_enc);
    p.branch.type = BranchConfig::Type::Simple;
    p.branch.simpleMispredictPct = 50;
    p.memory.prefetchDegree = 4;
    encodeParams(p, simple_enc);
    const size_t n = kParamEncodingDim;
    // Branch one-hot occupies [n-4, n-2); prefetch one-hot [n-2, n).
    EXPECT_EQ(tage_enc[n - 4], 0.0f);
    EXPECT_EQ(tage_enc[n - 3], 1.0f);
    EXPECT_EQ(simple_enc[n - 4], 1.0f);
    EXPECT_EQ(simple_enc[n - 3], 0.0f);
    EXPECT_EQ(tage_enc[n - 2], 1.0f);   // prefetch off
    EXPECT_EQ(simple_enc[n - 1], 1.0f); // prefetch on
}

TEST(Encoding, DistinguishesDesigns)
{
    std::vector<float> a, b;
    encodeParams(UarchParams::armN1(), a);
    encodeParams(UarchParams::bigCore(), b);
    EXPECT_NE(a, b);
}

TEST(ToString, MentionsKeyFields)
{
    const std::string s = UarchParams::armN1().toString();
    EXPECT_NE(s.find("rob=128"), std::string::npos);
    EXPECT_NE(s.find("TAGE"), std::string::npos);
}

} // anonymous namespace
} // namespace concorde
