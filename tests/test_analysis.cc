/**
 * @file
 * Tests for trace analysis (Section 3.1) and Algorithm 1's memory state
 * machine, including the paper's worked same-cache-line example.
 */

#include <gtest/gtest.h>

#include "analysis/memory_state_machine.hh"
#include "analysis/trace_analyzer.hh"
#include "trace/workloads.hh"

namespace concorde
{
namespace
{

Instruction
makeLoad(uint64_t addr)
{
    Instruction instr;
    instr.type = InstrType::Load;
    instr.memAddr = addr;
    return instr;
}

Instruction
makeAlu()
{
    Instruction instr;
    instr.type = InstrType::IntAlu;
    return instr;
}

TEST(LoadLineIndex, CsrIntegrity)
{
    std::vector<Instruction> region = {
        makeLoad(0x1000), makeAlu(), makeLoad(0x1008), makeLoad(0x2000),
        makeAlu(), makeLoad(0x1010),
    };
    const auto index = LoadLineIndex::build(region);
    EXPECT_EQ(index.numLines, 2u);
    EXPECT_EQ(index.lineIdOf[1], -1);
    EXPECT_EQ(index.lineIdOf[0], index.lineIdOf[2]);
    EXPECT_EQ(index.lineIdOf[0], index.lineIdOf[5]);
    EXPECT_NE(index.lineIdOf[0], index.lineIdOf[3]);

    // Every load appears exactly once, in trace order, in its line list.
    const int32_t lid = index.lineIdOf[0];
    const uint32_t begin = index.lineStart[lid];
    const uint32_t end = index.lineStart[lid + 1];
    ASSERT_EQ(end - begin, 3u);
    EXPECT_EQ(index.loadList[begin], 0u);
    EXPECT_EQ(index.loadList[begin + 1], 2u);
    EXPECT_EQ(index.loadList[begin + 2], 5u);
}

TEST(MemoryStateMachine, PaperSameLineExample)
{
    // Two loads to one line; in-order cache sim said [RAM=200, L1=4].
    // Issued at cycles 0 and 1: both must complete at ~200 (the second
    // waits for the first fill) -- the motivating example of Section 3.1.
    std::vector<Instruction> region = {makeLoad(0x5000), makeLoad(0x5008)};
    std::vector<int32_t> exec_lat = {200, 4};
    const auto index = LoadLineIndex::build(region);
    MemoryStateMachine machine(index, exec_lat);

    const uint64_t first = machine.respCycle(0, 0, region[0]);
    EXPECT_EQ(first, 200u);
    const uint64_t second = machine.respCycle(1, 1, region[1]);
    EXPECT_EQ(second, 200u) << "same-line response must not precede fill";
}

TEST(MemoryStateMachine, ResponsesNonDecreasingPerLine)
{
    std::vector<Instruction> region;
    std::vector<int32_t> exec_lat;
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        region.push_back(makeLoad(0x7000 + (i % 4) * 64));
        exec_lat.push_back(static_cast<int32_t>(rng.nextBounded(200)) + 4);
    }
    const auto index = LoadLineIndex::build(region);
    MemoryStateMachine machine(index, exec_lat);
    std::map<uint64_t, uint64_t> last_resp;
    uint64_t req = 0;
    for (size_t i = 0; i < region.size(); ++i) {
        req += rng.nextBounded(5);
        const uint64_t resp = machine.respCycle(req, i, region[i]);
        auto [it, inserted] =
            last_resp.try_emplace(region[i].dataLine(), resp);
        if (!inserted) {
            EXPECT_GE(resp, it->second);
            it->second = resp;
        }
    }
}

TEST(MemoryStateMachine, NonLoadsPassThrough)
{
    std::vector<Instruction> region = {makeAlu()};
    std::vector<int32_t> exec_lat = {7};
    const auto index = LoadLineIndex::build(region);
    MemoryStateMachine machine(index, exec_lat);
    EXPECT_EQ(machine.respCycle(10, 0, region[0]), 17u);
}

TEST(MemoryStateMachine, ResetClearsState)
{
    std::vector<Instruction> region = {makeLoad(0x5000), makeLoad(0x5008)};
    std::vector<int32_t> exec_lat = {200, 4};
    const auto index = LoadLineIndex::build(region);
    MemoryStateMachine machine(index, exec_lat);
    machine.respCycle(0, 0, region[0]);
    machine.respCycle(1, 1, region[1]);
    machine.reset();
    EXPECT_EQ(machine.respCycle(0, 0, region[0]), 200u);
}

TEST(MemoryStateMachine, AccessCountersFollowConsumptionOrder)
{
    // Three same-line loads with in-order latencies [200, 4, 4]: the state
    // machine hands out latencies by access number, so a later request
    // still gets the right exec time.
    std::vector<Instruction> region = {
        makeLoad(0x9000), makeLoad(0x9008), makeLoad(0x9010)};
    std::vector<int32_t> exec_lat = {200, 4, 4};
    const auto index = LoadLineIndex::build(region);
    MemoryStateMachine machine(index, exec_lat);
    EXPECT_EQ(machine.respCycle(0, 0, region[0]), 200u);
    // Issued long after the fill: plain L1 hit.
    EXPECT_EQ(machine.respCycle(500, 1, region[1]), 504u);
    EXPECT_EQ(machine.respCycle(600, 2, region[2]), 604u);
}

TEST(RegionAnalysis, ExecLatenciesMatchLevels)
{
    RegionSpec spec{programIdByCode("S7"), 0, 2, 2};
    RegionAnalysis analysis(spec, 1);
    const auto &dside = analysis.dside(MemoryConfig{});
    const auto &region = analysis.instrs();
    ASSERT_EQ(dside.execLat.size(), region.size());
    for (size_t i = 0; i < region.size(); ++i) {
        if (region[i].isLoad()) {
            EXPECT_EQ(dside.execLat[i], loadLatency(dside.loadLevel[i]));
        } else {
            EXPECT_EQ(dside.execLat[i], fixedLatency(region[i].type));
        }
    }
}

TEST(RegionAnalysis, IsideNewLineFlags)
{
    RegionSpec spec{programIdByCode("O2"), 0, 0, 1};
    RegionAnalysis analysis(spec, 0);
    const auto &iside = analysis.iside(MemoryConfig{});
    const auto &region = analysis.instrs();
    EXPECT_EQ(iside.newLine[0], 1);
    for (size_t i = 1; i < region.size(); ++i) {
        if (region[i].instLine() == region[i - 1].instLine())
            EXPECT_EQ(iside.newLine[i], 0);
        else
            EXPECT_EQ(iside.newLine[i], 1);
        if (!iside.newLine[i]) {
            EXPECT_EQ(iside.lineLat[i], kL1iHitLat);
        }
    }
}

TEST(RegionAnalysis, MemoizationPerConfig)
{
    RegionSpec spec{programIdByCode("P8"), 0, 4, 2};
    RegionAnalysis analysis(spec, 1);
    MemoryConfig a;         // default 64/64/1024/off
    MemoryConfig b;
    b.l1dKb = 256;

    const auto *first = &analysis.dside(a);
    const auto *again = &analysis.dside(a);
    EXPECT_EQ(first, again) << "same config must be memoized";
    EXPECT_EQ(analysis.numDsideAnalyses(), 1u);
    analysis.dside(b);
    EXPECT_EQ(analysis.numDsideAnalyses(), 2u);

    // L1i size does not affect the d-side key.
    MemoryConfig c;
    c.l1iKb = 256;
    analysis.dside(c);
    EXPECT_EQ(analysis.numDsideAnalyses(), 2u);
}

TEST(RegionAnalysis, BiggerCachesFasterLoads)
{
    RegionSpec spec{programIdByCode("S1"), 0, 8, 4};
    RegionAnalysis analysis(spec, 1);
    MemoryConfig small_cfg, big_cfg;
    small_cfg.l1dKb = 16;
    small_cfg.l2Kb = 512;
    big_cfg.l1dKb = 256;
    big_cfg.l2Kb = 4096;
    uint64_t small_sum = 0, big_sum = 0;
    const auto &small_side = analysis.dside(small_cfg);
    const auto &big_side = analysis.dside(big_cfg);
    for (size_t i = 0; i < analysis.instrs().size(); ++i) {
        if (analysis.instrs()[i].isLoad()) {
            small_sum += small_side.execLat[i];
            big_sum += big_side.execLat[i];
        }
    }
    EXPECT_LT(big_sum, small_sum);
}

TEST(RegionAnalysis, PrefetchImprovesStreamingLoads)
{
    RegionSpec spec{programIdByCode("P5"), 0, 4, 4};
    RegionAnalysis analysis(spec, 1);
    MemoryConfig off, on;
    on.prefetchDegree = 4;
    uint64_t off_sum = 0, on_sum = 0;
    const auto &off_side = analysis.dside(off);
    const auto &on_side = analysis.dside(on);
    for (size_t i = 0; i < analysis.instrs().size(); ++i) {
        if (analysis.instrs()[i].isLoad()) {
            off_sum += off_side.execLat[i];
            on_sum += on_side.execLat[i];
        }
    }
    EXPECT_LT(on_sum, off_sum);
}

TEST(RegionAnalysis, BranchConfigsMemoizedSeparately)
{
    RegionSpec spec{programIdByCode("S2"), 0, 2, 2};
    RegionAnalysis analysis(spec, 1);
    BranchConfig tage;
    tage.type = BranchConfig::Type::Tage;
    BranchConfig simple;
    simple.type = BranchConfig::Type::Simple;
    simple.simpleMispredictPct = 10;

    const auto &t = analysis.branches(tage);
    const auto &s = analysis.branches(simple);
    EXPECT_EQ(analysis.numBranchAnalyses(), 2u);
    EXPECT_GT(t.numBranches, 0u);
    EXPECT_EQ(t.numBranches, s.numBranches);
    EXPECT_NEAR(s.mispredictRate(), 0.10, 0.03);
}

TEST(RegionAnalysis, WarmupComesFromPrecedingChunks)
{
    RegionSpec spec{programIdByCode("P1"), 0, 5, 2};
    RegionAnalysis analysis(spec, 2);
    EXPECT_EQ(analysis.warmupInstrs().size(), 2u * kChunkLen);
    // Warmup content equals chunks 3..4 of the same trace.
    RegionSpec warm{spec.programId, spec.traceId, 3, 2};
    const auto expect = generateRegion(warm);
    for (size_t i = 0; i < expect.size(); ++i)
        ASSERT_EQ(analysis.warmupInstrs()[i].pc, expect[i].pc);
}

} // anonymous namespace
} // namespace concorde
