/**
 * @file
 * Tests for the uncertainty-aware serving path: conformal intervals and
 * OOD flags on PredictResponse, the graceful-degradation fallback to
 * the cycle-level simulator (bitwise identical to calling it directly),
 * the fallback admission budget under a concurrent OOD flood, and the
 * crash-safe durable feedback file (a writer killed mid-append leaves
 * only complete records plus reclaimable staging debris).
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/analysis_store.hh"
#include "common/rng.hh"
#include "common/serialize.hh"
#include "core/concorde.hh"
#include "core/dataset.hh"
#include "core/model_artifact.hh"
#include "ml/mlp.hh"
#include "serve/prediction_service.hh"
#include "sim/o3_core.hh"

namespace concorde
{
namespace
{

using namespace concorde::serve;

BatchingConfig
uniformBatching(size_t max_batch, std::chrono::microseconds max_age)
{
    BatchingConfig cfg;
    for (auto &policy : cfg.classes)
        policy = {max_batch, max_age};
    return cfg;
}

/** Small untrained predictor + a hand-built calibration. */
ModelArtifact
calibratedArtifact(uint64_t seed, std::vector<double> scores,
                   float env_lo, float env_hi)
{
    FeatureConfig cfg;
    cfg.numPercentiles = 5;
    cfg.robSweep = {4, 64};
    cfg.latencyRobSizes = {4, 64};
    const FeatureLayout layout(cfg);
    Mlp net({layout.dim(), 16, 1}, seed);
    std::vector<float> mean(layout.dim(), 0.0f);
    std::vector<float> stdev(layout.dim(), 1.0f);

    ModelArtifact artifact;
    artifact.features = cfg;
    artifact.model = TrainedModel(std::move(net), std::move(mean),
                                  std::move(stdev), {});
    artifact.calibration.scores = std::move(scores);
    artifact.calibration.featLo.assign(layout.dim(), env_lo);
    artifact.calibration.featHi.assign(layout.dim(), env_hi);
    return artifact;
}

/** Envelope far away from any real feature: every request flags OOD. */
ModelArtifact
oodForcingArtifact(uint64_t seed)
{
    return calibratedArtifact(seed, {0.01, 0.02, 0.03}, 1e9f, 2e9f);
}

/** Envelope containing everything: no request ever flags OOD. */
ModelArtifact
inDistributionArtifact(uint64_t seed, std::vector<double> scores)
{
    return calibratedArtifact(seed, std::move(scores), -1e9f, 1e9f);
}

ServeConfig
uncertaintyServeConfig(size_t pool_threads = 2)
{
    ServeConfig cfg;
    cfg.batching =
        uniformBatching(8, std::chrono::microseconds(100));
    cfg.cacheCapacity = 0;  // every request exercises the full path
    cfg.poolThreads = pool_threads;
    return cfg;
}

PredictRequest
makeRequest(const RegionSpec &region, const UarchParams &params)
{
    PredictRequest request;
    request.model = "m";
    request.region = region;
    request.params = params;
    return request;
}

double
directSimCpi(const RegionSpec &region, const UarchParams &params)
{
    const auto analysis = AnalysisStore::global().acquire(region);
    SimScratch scratch;
    return simulateRegion(params, *analysis, 0, &scratch).cpi();
}

/** Staging-debris files (`<base>.tmp.*`) next to `path`. */
size_t
countStagingDebris(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const std::string base =
        (slash == std::string::npos ? path : path.substr(slash + 1))
        + ".tmp";
    size_t count = 0;
    DIR *d = opendir(dir.c_str());
    if (!d)
        return 0;
    while (const dirent *entry = readdir(d)) {
        if (std::string(entry->d_name).rfind(base, 0) == 0)
            ++count;
    }
    closedir(d);
    return count;
}

TEST(Uncertainty, FallbackIsBitwiseIdenticalToDirectSimulation)
{
    ServeConfig cfg = uncertaintyServeConfig();
    cfg.uncertainty.fallbackEnabled = true;
    cfg.uncertainty.maxFallbackInFlight = 2;
    PredictionService service(cfg);
    service.registry().addArtifact("m", oodForcingArtifact(31));

    const RegionSpec region{3, 0, 0, 1};
    Rng rng(32);
    for (int i = 0; i < 4; ++i) {
        const UarchParams params = UarchParams::sampleRandom(rng);
        const PredictResponse response =
            service.predict(makeRequest(region, params));
        ASSERT_TRUE(response.ok()) << response.message;
        EXPECT_TRUE(response.fallback);
        EXPECT_TRUE(response.ood);
        EXPECT_TRUE(response.calibrated);
        // Ground truth: interval collapses to the point, and the point
        // is *bitwise* what simulateRegion returns for this request.
        EXPECT_EQ(response.lo, response.cpi);
        EXPECT_EQ(response.hi, response.cpi);
        EXPECT_EQ(response.cpi, directSimCpi(region, params));
    }

    const ServeStats stats = service.stats();
    EXPECT_EQ(stats.servedFallbackSim, 4u);
    EXPECT_EQ(stats.flaggedOod, 4u);
    EXPECT_EQ(stats.servedFast, 0u);
    EXPECT_EQ(stats.fallbackRejectedOverload, 0u);
}

TEST(Uncertainty, FlaggedResultsAreNeverCached)
{
    ServeConfig cfg = uncertaintyServeConfig();
    cfg.cacheCapacity = 1024;   // cache on; flagged answers must skip it
    cfg.uncertainty.fallbackEnabled = true;
    PredictionService service(cfg);
    service.registry().addArtifact("m", oodForcingArtifact(33));

    const PredictRequest request =
        makeRequest(RegionSpec{4, 0, 0, 1}, UarchParams::armN1());
    const PredictResponse first = service.predict(request);
    const PredictResponse second = service.predict(request);
    EXPECT_TRUE(first.fallback);
    EXPECT_TRUE(second.fallback);
    EXPECT_EQ(first.cpi, second.cpi);
    // Both passes missed: a flagged answer never entered the cache.
    EXPECT_EQ(service.stats().cache.hits, 0u);
    EXPECT_EQ(service.stats().servedFallbackSim, 2u);
}

TEST(Uncertainty, CalibratedInDistributionServesIntervalOnFastPath)
{
    ServeConfig cfg = uncertaintyServeConfig();
    cfg.uncertainty.alpha = 0.1;
    cfg.uncertainty.fallbackEnabled = true;    // must not engage
    PredictionService service(cfg);
    const ModelArtifact artifact =
        inDistributionArtifact(34, {0.05, 0.10, 0.20});
    service.registry().addArtifact("m", artifact);

    const PredictResponse response = service.predict(
        makeRequest(RegionSpec{5, 0, 0, 1}, UarchParams::armN1()));
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response.calibrated);
    EXPECT_FALSE(response.ood);
    EXPECT_FALSE(response.fallback);
    // The served interval is exactly what the shipped calibration
    // produces around the served point at the configured alpha.
    double lo = 0.0, hi = 0.0;
    artifact.calibration.intervalAround(response.cpi,
                                        cfg.uncertainty.alpha, lo, hi);
    EXPECT_EQ(response.lo, lo);
    EXPECT_EQ(response.hi, hi);
    EXPECT_EQ(service.stats().servedFast, 1u);
    EXPECT_EQ(service.stats().flaggedOod, 0u);
}

TEST(Uncertainty, UncalibratedModelServesPointOnly)
{
    ServeConfig cfg = uncertaintyServeConfig();
    cfg.uncertainty.fallbackEnabled = true;    // irrelevant: no calibration
    PredictionService service(cfg);
    ModelArtifact bare = oodForcingArtifact(35);
    bare.calibration = ConformalCalibration{};
    service.registry().addArtifact("m", bare);

    const PredictResponse response = service.predict(
        makeRequest(RegionSpec{6, 0, 0, 1}, UarchParams::armN1()));
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response.calibrated);
    EXPECT_FALSE(response.ood);
    EXPECT_FALSE(response.fallback);
    EXPECT_EQ(response.lo, 0.0);
    EXPECT_EQ(response.hi, 0.0);
    EXPECT_EQ(service.stats().servedFast, 1u);
}

TEST(Uncertainty, WidthSloBreachTriggersFallbackWithoutOodFlag)
{
    ServeConfig cfg = uncertaintyServeConfig();
    // One huge conformity score: every interval is ~20x wider than the
    // prediction, far past the 50% width SLO.
    cfg.uncertainty.maxRelWidth = 0.5;
    cfg.uncertainty.fallbackEnabled = true;
    PredictionService service(cfg);
    const ModelArtifact artifact = inDistributionArtifact(36, {10.0});
    service.registry().addArtifact("m", artifact);

    const RegionSpec region{7, 0, 0, 1};
    const UarchParams params = UarchParams::armN1();
    // The width check only applies to positive predictions (the seed
    // is chosen so the untrained net predicts > 0 here).
    {
        ConcordePredictor probe = artifact.predictor();
        FeatureProvider provider(region, probe.featureConfig());
        ASSERT_GT(probe.predictCpi(provider, params), 0.0);
    }
    const PredictResponse response =
        service.predict(makeRequest(region, params));
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response.fallback);
    EXPECT_FALSE(response.ood);     // flagged by width, not by OOD
    EXPECT_EQ(response.cpi, directSimCpi(region, params));
    EXPECT_EQ(service.stats().flaggedOod, 0u);
    EXPECT_EQ(service.stats().servedFallbackSim, 1u);
}

TEST(Uncertainty, ExhaustedBudgetRejectsWhenConfigured)
{
    ServeConfig cfg = uncertaintyServeConfig();
    cfg.uncertainty.fallbackEnabled = true;
    cfg.uncertainty.maxFallbackInFlight = 0;    // nothing ever admitted
    cfg.uncertainty.rejectOnBudget = true;
    PredictionService service(cfg);
    service.registry().addArtifact("m", oodForcingArtifact(37));

    Rng rng(38);
    for (int i = 0; i < 3; ++i) {
        const PredictResponse response = service.predict(makeRequest(
            RegionSpec{8, 0, 0, 1}, UarchParams::sampleRandom(rng)));
        EXPECT_EQ(response.status, ServeStatus::OVERLOADED);
        EXPECT_NE(response.message.find("budget"), std::string::npos);
    }
    const ServeStats stats = service.stats();
    EXPECT_EQ(stats.fallbackRejectedOverload, 3u);
    EXPECT_EQ(stats.servedFallbackSim, 0u);
    EXPECT_EQ(stats.servedFast, 0u);
}

TEST(Uncertainty, ExhaustedBudgetDegradesToFlaggedFastAnswer)
{
    ServeConfig cfg = uncertaintyServeConfig();
    cfg.uncertainty.fallbackEnabled = true;
    cfg.uncertainty.maxFallbackInFlight = 0;
    cfg.uncertainty.rejectOnBudget = false;     // the default
    PredictionService service(cfg);
    service.registry().addArtifact("m", oodForcingArtifact(39));

    const PredictResponse response = service.predict(
        makeRequest(RegionSpec{9, 0, 0, 1}, UarchParams::armN1()));
    // The fast ML answer stands, with the flags telling the client
    // exactly how much to trust it.
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response.ood);
    EXPECT_FALSE(response.fallback);
    EXPECT_TRUE(response.calibrated);
    EXPECT_EQ(service.stats().fallbackRejectedOverload, 1u);
    EXPECT_EQ(service.stats().servedFast, 1u);
}

TEST(Uncertainty, ConcurrentOodFloodRespectsBudgetWithoutDeadlock)
{
    ServeConfig cfg = uncertaintyServeConfig(/*pool_threads=*/4);
    // maxBatch 1: every request is its own batch, so up to four
    // handlers race for one fallback slot at a time.
    cfg.batching = uniformBatching(1, std::chrono::microseconds(50));
    cfg.uncertainty.fallbackEnabled = true;
    cfg.uncertainty.maxFallbackInFlight = 1;
    cfg.uncertainty.rejectOnBudget = false;
    PredictionService service(cfg);
    service.registry().addArtifact("m", oodForcingArtifact(41));

    const size_t n = 24;
    const RegionSpec region{10, 0, 0, 1};
    // Warm the region analysis so the flood races on the budget, not
    // on the store's per-key once-init.
    (void)directSimCpi(region, UarchParams::armN1());

    Rng rng(42);
    std::vector<std::future<PredictResponse>> futures;
    for (size_t i = 0; i < n; ++i) {
        futures.push_back(service.submit(
            makeRequest(region, UarchParams::sampleRandom(rng))));
    }
    size_t fallbacks = 0, flagged_fast = 0;
    for (auto &future : futures) {
        const PredictResponse response = future.get();
        ASSERT_TRUE(response.ok()) << response.message;
        EXPECT_TRUE(response.ood);
        if (response.fallback) {
            ++fallbacks;
            EXPECT_EQ(response.lo, response.cpi);
        } else {
            ++flagged_fast;
        }
    }
    const ServeStats stats = service.stats();
    EXPECT_EQ(fallbacks + flagged_fast, n);
    EXPECT_EQ(stats.servedFallbackSim, fallbacks);
    EXPECT_EQ(stats.servedFast, flagged_fast);
    EXPECT_EQ(stats.fallbackRejectedOverload, flagged_fast);
    EXPECT_EQ(stats.flaggedOod, static_cast<uint64_t>(n));
    EXPECT_GE(fallbacks, 1u);   // the budget admits work, not nothing
}

/**
 * Run a feedback-writing workload in a forked child so the crash hook
 * (a process-wide env switch) can kill it without taking the test
 * runner down. Returns the child's wait status.
 */
int
runFeedbackChild(const std::string &feedback_path, int crash_after,
                 int num_requests, uint64_t region_program)
{
    fflush(nullptr);
    const pid_t pid = fork();
    if (pid == 0) {
        if (crash_after >= 0) {
            char value[16];
            std::snprintf(value, sizeof(value), "%d", crash_after);
            setenv("CONCORDE_FEEDBACK_CRASH_AFTER_APPENDS", value, 1);
        }
        ServeConfig cfg = uncertaintyServeConfig(/*pool_threads=*/1);
        cfg.uncertainty.fallbackEnabled = true;
        cfg.uncertainty.maxFallbackInFlight = 2;
        cfg.uncertainty.feedbackPath = feedback_path;
        PredictionService service(cfg);
        service.registry().addArtifact("m", oodForcingArtifact(51));
        Rng rng(52);
        for (int i = 0; i < num_requests; ++i) {
            const PredictResponse response = service.predict(
                makeRequest(RegionSpec{static_cast<int>(region_program),
                                       0, 0, 1},
                            UarchParams::sampleRandom(rng)));
            if (!response.ok() || !response.fallback)
                ::_exit(3);
        }
        service.shutdown();
        ::_exit(0);
    }
    int status = 0;
    EXPECT_EQ(waitpid(pid, &status, 0), pid);
    return status;
}

TEST(Uncertainty, FeedbackFileSurvivesWriterKilledMidAppend)
{
    const std::string path = "/tmp/concorde_test_feedback_" +
        std::to_string(::getpid()) + ".bin";
    std::remove(path.c_str());
    reclaimStagingDebris(path);
    ASSERT_EQ(countStagingDebris(path), 0u);

    // Round 1: a clean writer appends two records and exits normally.
    int status = runFeedbackChild(path, /*crash_after=*/-1,
                                  /*num_requests=*/2, 11);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
    ASSERT_TRUE(fileExists(path));
    {
        const Dataset feedback = Dataset::load(path);
        ASSERT_EQ(feedback.size(), 2u);
        // Labels are the simulator's ground truth for the recorded
        // (region, design point) -- re-simulation reproduces them.
        for (size_t i = 0; i < feedback.size(); ++i) {
            EXPECT_EQ(feedback.labels[i],
                      static_cast<float>(
                          directSimCpi(feedback.meta[i].region,
                                       feedback.meta[i].params)));
        }
    }

    // Round 2: the writer is killed mid-append -- after staging the
    // third record but before publishing it. The published file must
    // still be the previous complete version; the only trace of the
    // crash is staging debris.
    status = runFeedbackChild(path, /*crash_after=*/0,
                              /*num_requests=*/1, 11);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 42);     // the crash hook's exit code
    ASSERT_TRUE(fileExists(path));
    {
        const Dataset feedback = Dataset::load(path);   // still loads
        EXPECT_EQ(feedback.size(), 2u);     // no partial third record
    }
    EXPECT_GE(countStagingDebris(path), 1u);

    // The next writer's first touch sweeps the dead pid's debris.
    EXPECT_GE(reclaimStagingDebris(path), 1u);
    EXPECT_EQ(countStagingDebris(path), 0u);

    std::remove(path.c_str());
}

TEST(Uncertainty, FeedbackAccumulatesAcrossWriters)
{
    const std::string path = "/tmp/concorde_test_feedback_acc_" +
        std::to_string(::getpid()) + ".bin";
    std::remove(path.c_str());

    // Two writer generations (service restarts) append to one file.
    for (int round = 0; round < 2; ++round) {
        const int status =
            runFeedbackChild(path, -1, /*num_requests=*/2, 11);
        ASSERT_TRUE(WIFEXITED(status));
        ASSERT_EQ(WEXITSTATUS(status), 0);
    }
    const Dataset feedback = Dataset::load(path);
    EXPECT_EQ(feedback.size(), 4u);
    EXPECT_GT(feedback.dim, 0u);
    EXPECT_EQ(feedback.features.size(), feedback.dim * feedback.size());
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace concorde
