/**
 * @file
 * Unit tests for common utilities: RNG, distribution encoding, stats,
 * thread pool, and serialization.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>

#include "common/rng.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"

namespace concorde
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(8);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GeometricMeanApproximatelyCorrect)
{
    Rng rng(10);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(8.0));
    EXPECT_NEAR(sum / n, 8.0, 0.3);
}

TEST(Rng, GeometricMinimumIsOne)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.nextGeometric(1.5), 1u);
    EXPECT_EQ(rng.nextGeometric(0.5), 1u);
}

TEST(Rng, ZipfInRangeAndSkewed)
{
    Rng rng(12);
    uint64_t low = 0, total = 20000;
    for (uint64_t i = 0; i < total; ++i) {
        const uint64_t v = rng.nextZipf(1000, 1.1);
        EXPECT_LT(v, 1000u);
        low += v < 100;
    }
    // Skew: far more than 10% of draws land in the first 10% of ranks.
    EXPECT_GT(static_cast<double>(low) / total, 0.4);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.push(rng.nextGaussian());
    EXPECT_NEAR(stats.avg(), 0.0, 0.02);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, ForkAdvancesParent)
{
    Rng parent(14);
    Rng child = parent.fork(1);
    Rng child2 = parent.fork(1);
    // Sequential forks differ (parent state advances).
    EXPECT_NE(child.next(), child2.next());
}

TEST(HashMix, StableAndSpread)
{
    EXPECT_EQ(hashMix(1, 2, 3), hashMix(1, 2, 3));
    EXPECT_NE(hashMix(1, 2, 3), hashMix(1, 2, 4));
    EXPECT_NE(hashMix(1, 2, 3), hashMix(2, 1, 3));
}

TEST(Percentile, InterpolatesBetweenOrderStatistics)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
}

TEST(Percentile, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(DistributionEncoder, DimIsTwoPPlusOne)
{
    EXPECT_EQ(DistributionEncoder(25).dim(), 51u);
    EXPECT_EQ(DistributionEncoder(50).dim(), 101u);
}

TEST(DistributionEncoder, EmptyEncodesAsZeros)
{
    DistributionEncoder enc(10);
    std::vector<float> out;
    enc.encode({}, out);
    ASSERT_EQ(out.size(), enc.dim());
    for (float v : out)
        EXPECT_EQ(v, 0.0f);
}

TEST(DistributionEncoder, PercentilesAreMonotone)
{
    DistributionEncoder enc(25);
    Rng rng(15);
    std::vector<double> samples;
    for (int i = 0; i < 500; ++i)
        samples.push_back(rng.nextDouble() * 100);
    std::vector<float> out;
    enc.encode(samples, out);
    for (size_t i = 1; i < 25; ++i)
        EXPECT_LE(out[i - 1], out[i]);
    for (size_t i = 26; i < 50; ++i)
        EXPECT_LE(out[i - 1], out[i]);
}

TEST(SortSamples, MatchesStdSortBitwise)
{
    Rng rng(77);
    auto check = [](std::vector<double> xs) {
        std::vector<double> reference = xs;
        std::sort(reference.begin(), reference.end());
        sortSamples(xs);
        ASSERT_EQ(xs.size(), reference.size());
        for (size_t i = 0; i < xs.size(); ++i) {
            // Bitwise equality, not just value equality.
            EXPECT_EQ(std::memcmp(&xs[i], &reference[i], sizeof(double)),
                      0) << "index " << i;
        }
    };

    // Large integral input: the counting fast path.
    std::vector<double> integral(4096);
    for (double &x : integral)
        x = static_cast<double>(rng.nextBounded(300));
    check(integral);

    // Duplicate-heavy and all-equal inputs.
    check(std::vector<double>(512, 7.0));

    // Fractional values: std::sort fallback.
    std::vector<double> fractional(512);
    for (double &x : fractional)
        x = rng.nextDouble() * 50.0;
    check(fractional);

    // Negative values and huge values force the fallback too.
    std::vector<double> mixed(512);
    for (double &x : mixed)
        x = static_cast<double>(rng.nextBounded(100)) - 50.0;
    check(mixed);
    std::vector<double> huge(512);
    for (double &x : huge)
        x = static_cast<double>(rng.nextBounded(1000)) * 1e6;
    check(huge);

    // Small inputs stay on std::sort (below the counting threshold).
    check({3.0, 1.0, 2.0});
    check({});
}

TEST(DistributionEncoder, InPlaceAndSortedMatchEncode)
{
    DistributionEncoder enc(25);
    Rng rng(78);
    for (int round = 0; round < 3; ++round) {
        std::vector<double> samples(700);
        for (double &x : samples) {
            x = round == 0 ? static_cast<double>(rng.nextBounded(40))
                           : rng.nextDouble() * 10.0;
        }

        std::vector<float> via_encode, via_in_place, via_sorted;
        enc.encode(samples, via_encode);

        std::vector<double> scratch = samples;
        enc.encodeInPlace(scratch, via_in_place);
        // The scratch buffer was sorted in place, not reallocated.
        EXPECT_TRUE(std::is_sorted(scratch.begin(), scratch.end()));
        enc.encodeSorted(scratch, via_sorted);

        ASSERT_EQ(via_encode.size(), enc.dim());
        ASSERT_EQ(via_in_place.size(), enc.dim());
        ASSERT_EQ(via_sorted.size(), enc.dim());
        for (size_t i = 0; i < enc.dim(); ++i) {
            EXPECT_EQ(via_encode[i], via_in_place[i]) << "entry " << i;
            EXPECT_EQ(via_encode[i], via_sorted[i]) << "entry " << i;
        }
    }
}

TEST(DistributionEncoder, MeanIsLastEntry)
{
    DistributionEncoder enc(5);
    std::vector<float> out;
    enc.encode({2.0, 4.0, 6.0}, out);
    EXPECT_FLOAT_EQ(out.back(), 4.0f);
}

TEST(DistributionEncoder, PositiveHomogeneity)
{
    DistributionEncoder enc(10);
    Rng rng(16);
    std::vector<double> samples;
    for (int i = 0; i < 100; ++i)
        samples.push_back(rng.nextDouble() * 10);
    std::vector<double> scaled = samples;
    for (double &x : scaled)
        x *= 3.0;
    std::vector<float> a, b;
    enc.encode(samples, a);
    enc.encode(scaled, b);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(b[i], 3.0f * a[i], 1e-4);
}

TEST(DistributionEncoder, SizeWeightedEmphasizesTail)
{
    // 90 samples of 1 and 10 samples of 100: the plain median is 1, the
    // size-weighted median is 100 (footnote 5 of the paper).
    DistributionEncoder enc(11);
    std::vector<double> samples(90, 1.0);
    samples.insert(samples.end(), 10, 100.0);
    std::vector<float> out;
    enc.encode(samples, out);
    const float plain_median = out[5];
    const float weighted_median = out[11 + 5];
    EXPECT_EQ(plain_median, 1.0f);
    EXPECT_EQ(weighted_median, 100.0f);
}

TEST(DistributionEncoder, AllZeroSamples)
{
    DistributionEncoder enc(5);
    std::vector<float> out;
    enc.encode({0.0, 0.0, 0.0}, out);
    for (float v : out)
        EXPECT_EQ(v, 0.0f);
}

TEST(DistributionEncoder, AppendsWithoutClobbering)
{
    DistributionEncoder enc(5);
    std::vector<float> out = {7.0f};
    enc.encode({1.0}, out);
    EXPECT_EQ(out.size(), 1 + enc.dim());
    EXPECT_EQ(out[0], 7.0f);
}

TEST(RunningStats, MatchesClosedForm)
{
    RunningStats stats;
    for (double x : {1.0, 2.0, 3.0, 4.0, 5.0})
        stats.push(x);
    EXPECT_EQ(stats.count(), 5u);
    EXPECT_DOUBLE_EQ(stats.avg(), 3.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 2.5);
}

TEST(ParallelFor, CoversAllIndicesOnce)
{
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(1000, [&](size_t i) { ++hits[i]; }, 8);
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroAndOneWork)
{
    std::atomic<int> count{0};
    parallelFor(0, [&](size_t) { ++count; });
    EXPECT_EQ(count.load(), 0);
    parallelFor(1, [&](size_t) { ++count; });
    EXPECT_EQ(count.load(), 1);
}

TEST(ParallelShards, PartitionsContiguously)
{
    std::vector<int> owner(100, -1);
    parallelShards(100, [&](size_t t, size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            owner[i] = static_cast<int>(t);
    }, 7);
    for (int o : owner)
        EXPECT_GE(o, 0);
    // Contiguity: owner ids are non-decreasing.
    for (size_t i = 1; i < owner.size(); ++i)
        EXPECT_LE(owner[i - 1], owner[i]);
}

TEST(Serialize, RoundTrip)
{
    const std::string path = "/tmp/concorde_test_serialize.bin";
    {
        BinaryWriter out(path);
        out.put<uint32_t>(0xDEADBEEF);
        out.put<double>(3.25);
        out.putVector(std::vector<float>{1.0f, 2.0f, 3.0f});
        out.putString("concorde");
    }
    {
        BinaryReader in(path);
        EXPECT_EQ(in.get<uint32_t>(), 0xDEADBEEFu);
        EXPECT_DOUBLE_EQ(in.get<double>(), 3.25);
        const auto v = in.getVector<float>();
        ASSERT_EQ(v.size(), 3u);
        EXPECT_EQ(v[1], 2.0f);
        EXPECT_EQ(in.getString(), "concorde");
    }
    std::remove(path.c_str());
}

TEST(Serialize, FileExistsAndEnsureDir)
{
    EXPECT_FALSE(fileExists("/tmp/concorde_definitely_missing_file"));
    ensureDir("/tmp/concorde_test_dir/a/b");
    BinaryWriter out("/tmp/concorde_test_dir/a/b/x.bin");
    out.put<int>(1);
    EXPECT_TRUE(out.ok());
}

} // anonymous namespace
} // namespace concorde
