/**
 * @file
 * Tests for the cache model, hierarchy, prefetcher, and timing memory.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "memory/cache.hh"
#include "memory/hierarchy.hh"
#include "memory/prefetcher.hh"
#include "memory/timing_memory.hh"

namespace concorde
{
namespace
{

TEST(Cache, HitAfterFill)
{
    Cache cache(16 * 1024, 4);
    EXPECT_FALSE(cache.lookup(100));
    EXPECT_FALSE(cache.access(100, false));
    EXPECT_TRUE(cache.lookup(100));
    EXPECT_TRUE(cache.access(100, false));
}

TEST(Cache, DirectMappedConflict)
{
    Cache cache(64 * 64, 1);    // 64 sets, direct mapped
    EXPECT_FALSE(cache.access(0, false));
    EXPECT_FALSE(cache.access(64, false));  // same set, evicts line 0
    EXPECT_FALSE(cache.lookup(0));
    EXPECT_TRUE(cache.lookup(64));
}

TEST(Cache, PlruProtectsRecentlyUsed)
{
    Cache cache(4 * 64, 4);     // one set, 4 ways
    for (uint64_t line = 0; line < 4; ++line)
        cache.access(line, false);
    // Touch line 0 (most recent), then insert a new line.
    EXPECT_TRUE(cache.access(0, false));
    cache.access(10, false);
    EXPECT_TRUE(cache.lookup(0)) << "MRU line must survive";
    EXPECT_TRUE(cache.lookup(10));
}

TEST(Cache, PlruEvictsApproximateLru)
{
    Cache cache(4 * 64, 4);
    for (uint64_t line = 0; line < 4; ++line)
        cache.access(line, false);
    // Touch 1, 2, 3: line 0 becomes the PLRU victim.
    cache.access(1, false);
    cache.access(2, false);
    cache.access(3, false);
    cache.access(20, false);
    EXPECT_FALSE(cache.lookup(0));
}

TEST(Cache, DirtyEvictionReported)
{
    Cache cache(64, 1);         // one line total
    bool dirty = false;
    cache.fill(1, true, dirty);
    EXPECT_FALSE(dirty);
    const uint64_t victim = cache.fill(2, false, dirty);
    EXPECT_EQ(victim, 1u);
    EXPECT_TRUE(dirty);
}

TEST(Cache, InvalidateDropsLine)
{
    Cache cache(16 * 1024, 4);
    cache.access(5, false);
    cache.invalidate(5);
    EXPECT_FALSE(cache.lookup(5));
}

TEST(Cache, FillExistingLineKeepsSingleCopy)
{
    Cache cache(4 * 64, 4);
    bool dirty = false;
    cache.fill(7, false, dirty);
    cache.fill(7, true, dirty);
    // Fill three more; all four coexist => 7 occupied one way only.
    cache.fill(1, false, dirty);
    cache.fill(2, false, dirty);
    cache.fill(3, false, dirty);
    EXPECT_TRUE(cache.lookup(7));
    EXPECT_TRUE(cache.lookup(1));
    EXPECT_TRUE(cache.lookup(2));
    EXPECT_TRUE(cache.lookup(3));
}

TEST(Hierarchy, LevelsServeInOrder)
{
    MemoryConfig config;
    DataHierarchy h(config);
    // Cold access: RAM. Second: L1.
    EXPECT_EQ(h.access(0x1000, 0x400000, false), CacheLevel::Ram);
    EXPECT_EQ(h.access(0x1000, 0x400000, false), CacheLevel::L1);
    EXPECT_EQ(h.stats().ramAccesses, 1u);
    EXPECT_EQ(h.stats().l1Hits, 1u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    MemoryConfig config;
    config.l1dKb = 16;          // 256 lines, 64 sets x 4 ways
    DataHierarchy h(config);
    // Fill a set-conflicting series of non-sequential lines.
    const uint64_t set_stride = 64 * 64;    // same set each time
    for (int i = 0; i < 8; ++i)
        h.access(0x1000, 0x1000000 + 2 * i * set_stride, false);
    // The first line fell out of L1 but must still be in L2.
    const CacheLevel level = h.access(0x1000, 0x1000000, false);
    EXPECT_EQ(level, CacheLevel::L2);
}

TEST(Hierarchy, SequentialStreamsBypassL2Allocation)
{
    MemoryConfig config;
    DataHierarchy h(config);
    // Pin a hot line into L2 (non-sequential accesses).
    h.access(0x10, 0x8000000, false);
    // A long sequential sweep (> L2 capacity) must not evict it.
    for (uint64_t i = 0; i < (8ULL << 20) / 64; ++i)
        h.access(0x20, 0x10000000 + i * 64, false);
    // Evict from L1 by conflict; then the hot line should hit in L2.
    // (Verify it was not flushed by the stream.)
    const HierarchyStats before = h.stats();
    (void)before;
    // Direct probe: re-access; it may be L1 or L2, never RAM.
    const CacheLevel level = h.access(0x10, 0x8000000, false);
    EXPECT_NE(level, CacheLevel::Ram);
}

TEST(Prefetcher, DetectsConstantStride)
{
    StridePrefetcher pf(4);
    std::vector<uint64_t> out;
    const uint64_t pc = 0x4444;
    pf.observe(pc, 1000, out);
    EXPECT_TRUE(out.empty());
    pf.observe(pc, 1064, out);
    pf.observe(pc, 1128, out);
    pf.observe(pc, 1192, out);      // confidence reached
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 1192u + 64);
    EXPECT_EQ(out[3], 1192u + 4 * 64);
}

TEST(Prefetcher, SubLineStridesCoverNextLines)
{
    StridePrefetcher pf(2);
    std::vector<uint64_t> out;
    for (int i = 0; i < 8; ++i)
        pf.observe(0x8, 5000 + i * 8, out);
    ASSERT_FALSE(out.empty());
    // Line-granular stepping: first prefetch at least one line ahead.
    EXPECT_GE(out[0], 5000u + 7 * 8 + 64);
}

TEST(Prefetcher, DisabledEmitsNothing)
{
    StridePrefetcher pf(0);
    std::vector<uint64_t> out;
    for (int i = 0; i < 10; ++i)
        pf.observe(0x8, 1000 + i * 64, out);
    EXPECT_TRUE(out.empty());
    EXPECT_FALSE(pf.enabled());
}

TEST(Prefetcher, RandomAccessesStayQuiet)
{
    StridePrefetcher pf(4);
    std::vector<uint64_t> out;
    Rng rng(5);
    size_t total = 0;
    for (int i = 0; i < 1000; ++i) {
        pf.observe(0x8, rng.next() % (1 << 30), out);
        total += out.size();
    }
    EXPECT_LT(total, 100u);
}

TEST(HierarchyPrefetch, StreamBecomesHitsWithPrefetchOn)
{
    MemoryConfig off;
    off.prefetchDegree = 0;
    MemoryConfig on;
    on.prefetchDegree = 4;
    DataHierarchy h_off(off), h_on(on);
    for (uint64_t i = 0; i < 4000; ++i) {
        h_off.access(0x100, 0x20000000 + i * 64, false);
        h_on.access(0x100, 0x20000000 + i * 64, false);
    }
    EXPECT_GT(h_on.stats().prefetchesIssued, 1000u);
    EXPECT_GT(h_on.stats().l1Hits, 4 * h_off.stats().l1Hits);
}

TEST(InstHierarchy, HitsAfterWarm)
{
    MemoryConfig config;
    InstHierarchy h(config);
    EXPECT_EQ(h.access(1000), CacheLevel::Ram);
    EXPECT_EQ(h.access(1001), CacheLevel::Ram);
    EXPECT_EQ(h.access(1000), CacheLevel::L1);
}

TEST(TimingMemory, L1HitLatency)
{
    MemoryConfig config;
    TimingMemory mem(config);
    mem.load(0x10, 0x5000, 0);              // miss, fills
    const MemResponse resp = mem.load(0x10, 0x5000, 1000);
    EXPECT_EQ(resp.level, CacheLevel::L1);
    EXPECT_EQ(resp.readyCycle, 1000u + loadLatency(CacheLevel::L1));
}

TEST(TimingMemory, SameLineMissesMerge)
{
    MemoryConfig config;
    TimingMemory mem(config);
    const MemResponse first = mem.load(0x10, 0x765000, 0);
    EXPECT_GE(first.readyCycle, TimingMemory::kDramLat);
    const MemResponse second = mem.load(0x20, 0x765008, 1);
    // Second load to the same in-flight line completes with the first,
    // never earlier (Algorithm 1's first principle in the ground truth).
    EXPECT_EQ(second.readyCycle, first.readyCycle);
}

TEST(TimingMemory, DramBandwidthSpacing)
{
    MemoryConfig config;
    TimingMemory mem(config);
    uint64_t prev = 0;
    for (int i = 0; i < 32; ++i) {
        const MemResponse resp =
            mem.load(0x10, 0x9000000 + i * 4096, 0);
        if (i > 0) {
            EXPECT_GE(resp.readyCycle, prev + TimingMemory::kDramGap);
        }
        prev = resp.readyCycle;
    }
}

TEST(TimingMemory, MshrLimitDelaysExcessMisses)
{
    MemoryConfig config;
    TimingMemory mem(config);
    // More concurrent misses than MSHRs: the tail must wait.
    uint64_t last = 0;
    for (int i = 0; i < TimingMemory::kMshrs + 8; ++i)
        last = mem.load(0x10, 0x9000000 + i * 4096, 0).readyCycle;
    EXPECT_GT(last, TimingMemory::kDramLat
              + (TimingMemory::kMshrs + 7) * TimingMemory::kDramGap);
}

TEST(TimingMemory, InstLineNeedsFillQuery)
{
    MemoryConfig config;
    TimingMemory mem(config);
    EXPECT_TRUE(mem.instLineNeedsFill(500, 0));
    const MemResponse resp = mem.fetchLine(500, 0);
    EXPECT_TRUE(resp.isFill);
    // While in flight, no new fill is needed.
    EXPECT_FALSE(mem.instLineNeedsFill(500, resp.readyCycle - 1));
    // After it lands, it is resident in L1i: still no fill.
    EXPECT_FALSE(mem.instLineNeedsFill(500, resp.readyCycle + 1));
}

TEST(TimingMemory, StoresUpdateState)
{
    MemoryConfig config;
    TimingMemory mem(config);
    mem.store(0x10, 0x345000, 0);
    const MemResponse resp = mem.load(0x20, 0x345000, 100);
    EXPECT_EQ(resp.level, CacheLevel::L1);
}

TEST(MemoryConfig, KeysDistinguishConfigs)
{
    const auto d_configs = allDataConfigs();
    EXPECT_EQ(d_configs.size(), 40u);
    std::set<uint32_t> keys;
    for (const auto &config : d_configs)
        keys.insert(config.dSideKey());
    EXPECT_EQ(keys.size(), 40u);

    const auto i_configs = allInstConfigs();
    EXPECT_EQ(i_configs.size(), 20u);
    std::set<uint32_t> ikeys;
    for (const auto &config : i_configs)
        ikeys.insert(config.iSideKey());
    EXPECT_EQ(ikeys.size(), 20u);
}

class CacheSizeSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(CacheSizeSweep, BiggerL1NeverHitsLess)
{
    // Property: on a zipf-random access stream, a larger L1d yields at
    // least as many L1 hits.
    const uint32_t kb = GetParam();
    if (kb == 16)
        return;     // compared against the next smaller size
    MemoryConfig small_cfg, big_cfg;
    small_cfg.l1dKb = kb / 2;
    big_cfg.l1dKb = kb;
    DataHierarchy small_h(small_cfg), big_h(big_cfg);
    Rng rng(kb);
    for (int i = 0; i < 40000; ++i) {
        const uint64_t line = rng.nextZipf(16384, 1.0);
        small_h.access(0x10, line * 64, false);
        big_h.access(0x10, line * 64, false);
    }
    EXPECT_GE(big_h.stats().l1Hits, small_h.stats().l1Hits);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheSizeSweep,
                         ::testing::Values(16, 32, 64, 128, 256));

} // anonymous namespace
} // namespace concorde
