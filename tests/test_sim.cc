/**
 * @file
 * Tests for the reference cycle-level simulator: width/latency laws on
 * micro-traces, parameter sensitivity directions, and statistics.
 */

#include <gtest/gtest.h>

#include "sim/o3_core.hh"
#include "trace/workloads.hh"

namespace concorde
{
namespace
{

std::vector<Instruction>
aluTrace(size_t n, int dep_dist)
{
    std::vector<Instruction> region(n);
    for (size_t i = 0; i < n; ++i) {
        region[i].type = InstrType::IntAlu;
        region[i].pc = 0x1000 + (i % 64) * 4;
        if (dep_dist > 0 && i >= static_cast<size_t>(dep_dist)) {
            region[i].srcDeps[0] =
                static_cast<int32_t>(i) - dep_dist;
        }
    }
    return region;
}

std::vector<Instruction>
loadTrace(size_t n, size_t lines)
{
    std::vector<Instruction> region(n);
    for (size_t i = 0; i < n; ++i) {
        region[i].type = InstrType::Load;
        region[i].pc = 0x1000 + (i % 64) * 4;
        region[i].memAddr = 0x100000 + (i % lines) * 64;
    }
    return region;
}

SimResult
simPlain(const UarchParams &params, const std::vector<Instruction> &warmup,
         const std::vector<Instruction> &region)
{
    return simulateTrace(params, warmup, region,
                         std::vector<uint8_t>(region.size(), 0));
}

TEST(Sim, IndependentAlusReachIssueWidth)
{
    const UarchParams n1 = UarchParams::armN1();
    const SimResult result = simPlain(n1, {}, aluTrace(16000, 0));
    EXPECT_NEAR(result.ipc(), 3.0, 0.5);    // ALU width 3
}

TEST(Sim, SerialChainRunsAtUnitLatency)
{
    const UarchParams n1 = UarchParams::armN1();
    const SimResult result = simPlain(n1, {}, aluTrace(16000, 1));
    EXPECT_NEAR(result.ipc(), 1.0, 0.1);
}

TEST(Sim, BigCoreReachesEightWideAlu)
{
    const SimResult result =
        simPlain(UarchParams::bigCore(), {}, aluTrace(16000, 0));
    EXPECT_NEAR(result.ipc(), 8.0, 1.0);
}

TEST(Sim, CommitWidthCapsIpc)
{
    UarchParams p = UarchParams::bigCore();
    p.commitWidth = 2;
    const SimResult result = simPlain(p, {}, aluTrace(16000, 0));
    EXPECT_LE(result.ipc(), 2.05);
    EXPECT_GT(result.ipc(), 1.5);
}

TEST(Sim, RobOfOneSerializes)
{
    UarchParams p = UarchParams::armN1();
    p.robSize = 1;
    const SimResult result = simPlain(p, {}, aluTrace(8000, 0));
    EXPECT_LE(result.ipc(), 1.0);
}

TEST(Sim, WarmLoadsReachLsWidth)
{
    const UarchParams n1 = UarchParams::armN1();
    const auto warm = loadTrace(16000, 512);
    const SimResult result = simPlain(n1, warm, loadTrace(16000, 512));
    EXPECT_NEAR(result.ipc(), 2.0, 0.1);    // LS width 2
}

TEST(Sim, LoadQueueOfOneSerializesLoads)
{
    UarchParams p = UarchParams::armN1();
    p.lqSize = 1;
    const auto warm = loadTrace(8000, 256);
    const SimResult result = simPlain(p, warm, loadTrace(8000, 256));
    // One load at a time at L1 latency 4 (plus pipeline slack).
    EXPECT_LT(result.ipc(), 0.35);
}

TEST(Sim, LoadPipesRelieveLsWidth)
{
    UarchParams p = UarchParams::armN1();
    p.lsWidth = 4;
    p.lqSize = 64;
    const auto warm = loadTrace(16000, 512);
    const SimResult two_pipes = simPlain(p, warm, loadTrace(16000, 512));
    p.loadPipes = 4;
    const SimResult with_lp = simPlain(p, warm, loadTrace(16000, 512));
    EXPECT_GT(with_lp.ipc(), two_pipes.ipc() * 1.3);
}

TEST(Sim, MispredictsCostCycles)
{
    const UarchParams n1 = UarchParams::armN1();
    auto region = aluTrace(8000, 0);
    for (size_t i = 25; i < region.size(); i += 50) {
        region[i].type = InstrType::Branch;
        region[i].branchKind = BranchKind::DirectCond;
    }
    std::vector<uint8_t> clean(region.size(), 0);
    std::vector<uint8_t> noisy(region.size(), 0);
    for (size_t i = 25; i < region.size(); i += 50)
        noisy[i] = 1;
    const SimResult good = simulateTrace(n1, {}, region, clean);
    const SimResult bad = simulateTrace(n1, {}, region, noisy);
    EXPECT_GT(bad.cpi(), good.cpi() * 1.3);
    EXPECT_EQ(bad.branchMispredicts, 160u);
}

TEST(Sim, IsbsDrainThePipeline)
{
    const UarchParams n1 = UarchParams::armN1();
    auto region = aluTrace(8000, 0);
    auto with_isb = region;
    for (size_t i = 32; i < with_isb.size(); i += 64)
        with_isb[i].type = InstrType::Isb;
    const SimResult base = simPlain(n1, {}, region);
    const SimResult drained = simPlain(n1, {}, with_isb);
    EXPECT_GT(drained.cpi(), base.cpi() * 1.15);
}

TEST(Sim, StoreForwardingBeatsCacheMiss)
{
    const UarchParams n1 = UarchParams::armN1();
    // Loads that read a just-written address; forwarding keeps them fast
    // even though the lines are cold.
    std::vector<Instruction> region(8000);
    for (size_t i = 0; i < region.size(); ++i) {
        region[i].pc = 0x1000 + (i % 64) * 4;
        if (i % 2 == 0) {
            region[i].type = InstrType::Store;
            region[i].memAddr = 0x4000000 + i * 64;
        } else {
            region[i].type = InstrType::Load;
            region[i].memAddr = region[i - 1].memAddr;
            region[i].memDep = static_cast<int32_t>(i - 1);
        }
    }
    const SimResult forwarded = simPlain(n1, {}, region);
    auto no_fwd = region;
    for (auto &instr : no_fwd)
        instr.memDep = -1;
    const SimResult direct = simPlain(n1, {}, no_fwd);
    EXPECT_LT(forwarded.cpi(), direct.cpi());
}

TEST(Sim, FetchBuffersHelpIcachePressure)
{
    // Large code footprint: more fetch buffers overlap line fetches.
    RegionSpec spec{programIdByCode("S3"), 0, 2, 2};
    RegionAnalysis analysis(spec, 1);
    UarchParams p = UarchParams::armN1();
    p.fetchBuffers = 1;
    const SimResult one = simulateRegion(p, analysis);
    p.fetchBuffers = 8;
    const SimResult eight = simulateRegion(p, analysis);
    EXPECT_LT(eight.cpi(), one.cpi());
}

TEST(Sim, BiggerCachesNeverMuchWorse)
{
    RegionSpec spec{programIdByCode("S1"), 0, 4, 2};
    RegionAnalysis analysis(spec, 1);
    UarchParams p = UarchParams::armN1();
    p.memory.l1dKb = 16;
    p.memory.l2Kb = 512;
    const SimResult small_caches = simulateRegion(p, analysis);
    p.memory.l1dKb = 256;
    p.memory.l2Kb = 4096;
    const SimResult big_caches = simulateRegion(p, analysis);
    EXPECT_LT(big_caches.cpi(), small_caches.cpi() * 1.02);
}

TEST(Sim, DeterministicResults)
{
    RegionSpec spec{programIdByCode("P7"), 0, 6, 2};
    RegionAnalysis a(spec, 1), b(spec, 1);
    const UarchParams n1 = UarchParams::armN1();
    const SimResult ra = simulateRegion(n1, a);
    const SimResult rb = simulateRegion(n1, b);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.branchMispredicts, rb.branchMispredicts);
}

TEST(Sim, StatisticsAreSane)
{
    RegionSpec spec{programIdByCode("P6"), 0, 2, 2};
    RegionAnalysis analysis(spec, 1);
    const SimResult result =
        simulateRegion(UarchParams::armN1(), analysis);
    EXPECT_EQ(result.instructions, analysis.instrs().size());
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.avgRobOccupancy, 0.0);
    EXPECT_LE(result.avgRobOccupancy, 100.0);
    EXPECT_GE(result.avgRenameQOccupancy, 0.0);
    EXPECT_LE(result.avgRenameQOccupancy, 100.0);
    EXPECT_GT(result.loadCount, 0u);
    EXPECT_GT(result.actualLoadLatencySum, 0u);
}

TEST(Sim, IpcNeverExceedsStaticWidths)
{
    Rng rng(11);
    for (int trial = 0; trial < 5; ++trial) {
        const RegionSpec spec = sampleRegion(rng, 2);
        RegionAnalysis analysis(spec, 1);
        const UarchParams p = UarchParams::sampleRandom(rng);
        const SimResult result = simulateRegion(p, analysis);
        const double width_cap = std::min(
            {static_cast<double>(p.commitWidth),
             static_cast<double>(p.fetchWidth),
             static_cast<double>(p.decodeWidth),
             static_cast<double>(p.renameWidth)});
        EXPECT_LE(result.ipc(), width_cap + 1e-9);
    }
}

TEST(Sim, WarmupExcludedFromStats)
{
    RegionSpec spec{programIdByCode("P3"), 0, 4, 2};
    RegionAnalysis analysis(spec, 1);
    const SimResult result =
        simulateRegion(UarchParams::armN1(), analysis);
    EXPECT_EQ(result.instructions, spec.numInstructions());
}

TEST(Sim, WindowCommitCyclesTrackCpi)
{
    RegionSpec spec{programIdByCode("P8"), 0, 2, 2};
    RegionAnalysis analysis(spec, 1);
    const SimResult result =
        simulateRegion(UarchParams::armN1(), analysis, 400);
    ASSERT_EQ(result.windowCommitCycles.size(),
              spec.numInstructions() / 400);
    // Boundaries are strictly increasing and end near the total cycles.
    for (size_t j = 1; j < result.windowCommitCycles.size(); ++j) {
        EXPECT_GT(result.windowCommitCycles[j],
                  result.windowCommitCycles[j - 1]);
    }
    EXPECT_LE(result.windowCommitCycles.back(), result.cycles);
    EXPECT_GT(result.windowCommitCycles.back(),
              result.cycles * 9 / 10);
}

TEST(Sim, MaxIcacheFillsMatterUnderPressure)
{
    // Instruction-cache-hostile program: more outstanding fills help.
    RegionSpec spec{programIdByCode("S3"), 0, 6, 2};
    RegionAnalysis analysis(spec, 1);
    UarchParams p = UarchParams::armN1();
    p.fetchBuffers = 8;
    p.maxIcacheFills = 1;
    const SimResult one = simulateRegion(p, analysis);
    p.maxIcacheFills = 32;
    const SimResult many = simulateRegion(p, analysis);
    EXPECT_LE(many.cpi(), one.cpi());
}

TEST(Sim, SimpleBpPercentScalesPenalty)
{
    RegionSpec spec{programIdByCode("S5"), 0, 10, 2};
    RegionAnalysis analysis(spec, 1);
    UarchParams p = UarchParams::armN1();
    p.branch.type = BranchConfig::Type::Simple;
    p.branch.simpleMispredictPct = 0;
    const SimResult perfect = simulateRegion(p, analysis);
    p.branch.simpleMispredictPct = 50;
    const SimResult noisy = simulateRegion(p, analysis);
    EXPECT_GT(noisy.cpi(), perfect.cpi() * 1.3);
}

TEST(Sim, PrefetchHelpsStreamingWorkload)
{
    RegionSpec spec{programIdByCode("P5"), 0, 8, 2};
    RegionAnalysis analysis(spec, 1);
    UarchParams p = UarchParams::armN1();
    p.memory.prefetchDegree = 0;
    const SimResult off = simulateRegion(p, analysis);
    p.memory.prefetchDegree = 4;
    const SimResult on = simulateRegion(p, analysis);
    EXPECT_LT(on.cpi(), off.cpi());
}

class SimRandomDesigns : public ::testing::TestWithParam<int>
{
};

TEST_P(SimRandomDesigns, AlwaysTerminatesWithSaneCpi)
{
    Rng rng(5000 + GetParam());
    const RegionSpec spec = sampleRegion(rng, 2);
    RegionAnalysis analysis(spec, 1);
    const UarchParams params = UarchParams::sampleRandom(rng);
    const SimResult result = simulateRegion(params, analysis);
    EXPECT_GT(result.cpi(), 0.05);
    EXPECT_LT(result.cpi(), 1500.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimRandomDesigns, ::testing::Range(0, 8));

} // anonymous namespace
} // namespace concorde
