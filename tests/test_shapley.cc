/**
 * @file
 * Tests for the Shapley attribution engine (Section 6): the classical
 * axioms (efficiency, symmetry, dummy), exactness on additive functions,
 * and the order-dependence of naive ablations that Figure 15 illustrates.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/shapley.hh"

namespace concorde
{
namespace
{

std::vector<ShapleyComponent>
firstComponents(size_t d)
{
    const auto &all = attributionComponents();
    return {all.begin(), all.begin() + d};
}

/** 1 if the component's first param is at its target value. */
double
indicator(const UarchParams &p, const UarchParams &target,
          const ShapleyComponent &component)
{
    return p.get(component.params[0]) == target.get(component.params[0])
        ? 1.0 : 0.0;
}

TEST(Components, CoverAllTwentyParamsOnce)
{
    std::set<ParamId> seen;
    for (const auto &component : attributionComponents()) {
        for (ParamId id : component.params) {
            EXPECT_TRUE(seen.insert(id).second)
                << "param " << static_cast<int>(id) << " repeated";
        }
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(kNumParams));
    EXPECT_EQ(attributionComponents().size(), 17u);
}

TEST(Shapley, AdditiveFunctionIsExact)
{
    // f = sum of independent per-component contributions: Shapley values
    // equal the contributions exactly, even with few sampled permutations.
    const auto components = firstComponents(5);
    const UarchParams base = UarchParams::bigCore();
    const UarchParams target = UarchParams::armN1();
    const std::vector<double> weights = {1.0, -2.0, 0.5, 3.0, 0.25};

    auto eval = [&](const UarchParams &p) {
        double acc = 10.0;
        for (size_t i = 0; i < components.size(); ++i)
            acc += weights[i] * indicator(p, target, components[i]);
        return acc;
    };

    ShapleyConfig config;
    config.numPermutations = 4;
    const auto phi =
        shapleyAttribution(base, target, components, eval, config);
    for (size_t i = 0; i < weights.size(); ++i)
        EXPECT_NEAR(phi[i], weights[i], 1e-12);
}

TEST(Shapley, EfficiencyAxiomExhaustive)
{
    // With interactions, exhaustive Shapley still sums to f(T) - f(B).
    const auto components = firstComponents(4);
    const UarchParams base = UarchParams::bigCore();
    const UarchParams target = UarchParams::armN1();

    auto eval = [&](const UarchParams &p) {
        const double a = indicator(p, target, components[0]);
        const double b = indicator(p, target, components[1]);
        const double c = indicator(p, target, components[2]);
        const double d = indicator(p, target, components[3]);
        return 5.0 + a + 2 * b + 4 * a * b - c * d + 0.5 * c;
    };

    ShapleyConfig config;
    config.exhaustive = true;
    const auto phi =
        shapleyAttribution(base, target, components, eval, config);
    double sum = 0.0;
    for (double v : phi)
        sum += v;
    EXPECT_NEAR(sum, eval(target) - eval(base), 1e-10);
}

TEST(Shapley, EfficiencyHoldsForMonteCarlo)
{
    // Every sampled permutation telescopes, so efficiency is exact for
    // the Monte Carlo estimator too.
    const auto components = firstComponents(6);
    const UarchParams base = UarchParams::bigCore();
    const UarchParams target = UarchParams::armN1();
    auto eval = [&](const UarchParams &p) {
        double acc = 1.0;
        for (size_t i = 0; i < components.size(); ++i)
            acc *= 1.0 + indicator(p, target, components[i]) * (i + 1)
                * 0.1;
        return acc;
    };
    ShapleyConfig config;
    config.numPermutations = 7;
    const auto phi =
        shapleyAttribution(base, target, components, eval, config);
    double sum = 0.0;
    for (double v : phi)
        sum += v;
    EXPECT_NEAR(sum, eval(target) - eval(base), 1e-10);
}

TEST(Shapley, SymmetryAxiom)
{
    // Interchangeable players receive equal attribution (exhaustive).
    const auto components = firstComponents(3);
    const UarchParams base = UarchParams::bigCore();
    const UarchParams target = UarchParams::armN1();
    auto eval = [&](const UarchParams &p) {
        const double a = indicator(p, target, components[0]);
        const double b = indicator(p, target, components[1]);
        // Symmetric in (a, b): value only via a + b and their product.
        return (a + b) * 2.0 + 3.0 * a * b;
    };
    ShapleyConfig config;
    config.exhaustive = true;
    const auto phi =
        shapleyAttribution(base, target, components, eval, config);
    EXPECT_NEAR(phi[0], phi[1], 1e-10);
}

TEST(Shapley, DummyPlayerGetsZero)
{
    const auto components = firstComponents(4);
    const UarchParams base = UarchParams::bigCore();
    const UarchParams target = UarchParams::armN1();
    auto eval = [&](const UarchParams &p) {
        return 7.0 + indicator(p, target, components[0]) * 2.0
            + indicator(p, target, components[2]) * 5.0;
    };
    ShapleyConfig config;
    config.exhaustive = true;
    const auto phi =
        shapleyAttribution(base, target, components, eval, config);
    EXPECT_NEAR(phi[1], 0.0, 1e-12);
    EXPECT_NEAR(phi[3], 0.0, 1e-12);
}

TEST(Shapley, ResolvesOrderDependence)
{
    // The Figure-15 scenario in miniature: f = 1 only when BOTH players
    // are at their small (target) values. Naive A->B attributes all to B;
    // B->A attributes all to A; Shapley splits evenly.
    const auto components = firstComponents(2);
    const UarchParams base = UarchParams::bigCore();
    const UarchParams target = UarchParams::armN1();
    auto eval = [&](const UarchParams &p) {
        return indicator(p, target, components[0])
            * indicator(p, target, components[1]);
    };

    const auto ab =
        orderedAblation(base, target, components, {0, 1}, eval);
    const auto ba =
        orderedAblation(base, target, components, {1, 0}, eval);
    EXPECT_NEAR(ab[0], 0.0, 1e-12);
    EXPECT_NEAR(ab[1], 1.0, 1e-12);
    EXPECT_NEAR(ba[0], 1.0, 1e-12);
    EXPECT_NEAR(ba[1], 0.0, 1e-12);

    ShapleyConfig config;
    config.exhaustive = true;
    const auto phi =
        shapleyAttribution(base, target, components, eval, config);
    EXPECT_NEAR(phi[0], 0.5, 1e-12);
    EXPECT_NEAR(phi[1], 0.5, 1e-12);
}

TEST(Shapley, MonteCarloApproachesExhaustive)
{
    const auto components = firstComponents(5);
    const UarchParams base = UarchParams::bigCore();
    const UarchParams target = UarchParams::armN1();
    auto eval = [&](const UarchParams &p) {
        double acc = 0.0;
        double prod = 1.0;
        for (size_t i = 0; i < components.size(); ++i) {
            const double x = indicator(p, target, components[i]);
            acc += x * (i + 0.5);
            prod *= 0.7 + 0.3 * x;
        }
        return acc + 4.0 * prod;
    };
    ShapleyConfig exact_cfg;
    exact_cfg.exhaustive = true;
    const auto exact =
        shapleyAttribution(base, target, components, eval, exact_cfg);
    ShapleyConfig mc_cfg;
    mc_cfg.numPermutations = 2000;
    mc_cfg.seed = 3;
    const auto approx =
        shapleyAttribution(base, target, components, eval, mc_cfg);
    for (size_t i = 0; i < exact.size(); ++i)
        EXPECT_NEAR(approx[i], exact[i], 0.05);
}

TEST(Shapley, GroupedComponentMovesAllItsParams)
{
    // The cache component moves L1d, L1i, and L2 together: an eval
    // function sensitive to any of the three sees exactly one step.
    const std::vector<ShapleyComponent> components = {
        attributionComponents()[0],     // caches
        attributionComponents()[2],     // ROB
    };
    const UarchParams base = UarchParams::bigCore();
    const UarchParams target = UarchParams::armN1();
    int evals_with_partial_caches = 0;
    auto eval = [&](const UarchParams &p) {
        const bool l1d = p.memory.l1dKb == target.memory.l1dKb;
        const bool l1i = p.memory.l1iKb == target.memory.l1iKb;
        const bool l2 = p.memory.l2Kb == target.memory.l2Kb;
        if (l1d != l1i || l1i != l2)
            ++evals_with_partial_caches;
        return l1d ? 2.0 : 1.0;
    };
    ShapleyConfig config;
    config.exhaustive = true;
    (void)shapleyAttribution(base, target, components, eval, config);
    EXPECT_EQ(evals_with_partial_caches, 0)
        << "grouped parameters must move atomically";
}

TEST(Shapley, SeedChangesMonteCarloSamples)
{
    const auto components = firstComponents(6);
    const UarchParams base = UarchParams::bigCore();
    const UarchParams target = UarchParams::armN1();
    auto eval = [&](const UarchParams &p) {
        double acc = 1.0;
        for (size_t i = 0; i < components.size(); ++i)
            acc += indicator(p, target, components[i])
                * indicator(p, target, components[(i + 1) % 6]) * (i + 1);
        return acc;
    };
    ShapleyConfig a;
    a.numPermutations = 3;
    a.seed = 1;
    ShapleyConfig b = a;
    b.seed = 2;
    const auto phi_a =
        shapleyAttribution(base, target, components, eval, a);
    const auto phi_b =
        shapleyAttribution(base, target, components, eval, b);
    bool any_diff = false;
    for (size_t i = 0; i < phi_a.size(); ++i)
        any_diff |= std::abs(phi_a[i] - phi_b[i]) > 1e-12;
    EXPECT_TRUE(any_diff);
}

TEST(OrderedAblation, TelescopesToTotal)
{
    const auto components = firstComponents(5);
    const UarchParams base = UarchParams::bigCore();
    const UarchParams target = UarchParams::armN1();
    auto eval = [&](const UarchParams &p) {
        double acc = 0.0;
        for (size_t i = 0; i < components.size(); ++i)
            acc += indicator(p, target, components[i]) * (i + 1.0);
        return acc * acc;
    };
    const auto deltas =
        orderedAblation(base, target, components, {4, 2, 0, 1, 3}, eval);
    double sum = 0.0;
    for (double d : deltas)
        sum += d;
    EXPECT_NEAR(sum, eval(target) - eval(base), 1e-10);
}

} // anonymous namespace
} // namespace concorde
