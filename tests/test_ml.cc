/**
 * @file
 * Tests for the from-scratch ML stack: gradient correctness against finite
 * differences, AdamW behavior, trainer convergence on synthetic targets,
 * masking, and serialization.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/rng.hh"
#include "ml/conformal.hh"
#include "ml/mlp.hh"
#include "ml/trainer.hh"

namespace concorde
{
namespace
{

TEST(Mlp, ForwardDeterministic)
{
    Mlp net({8, 16, 1}, 3);
    auto scratch = net.makeScratch();
    std::vector<float> x(8, 0.5f);
    const float a = net.forward(x.data(), scratch);
    const float b = net.forward(x.data(), scratch);
    EXPECT_EQ(a, b);
}

TEST(Mlp, ParameterCount)
{
    Mlp net({10, 4, 1}, 3);
    EXPECT_EQ(net.parameterCount(), 10u * 4 + 4 + 4 * 1 + 1);
}

TEST(Mlp, GradientMatchesFiniteDifference)
{
    // Perturb the INPUT and compare dL/dx via backprop-free finite
    // differences of the loss; gradients of weights are checked through
    // the loss decrease test below. Here we check the full chain by
    // numerically differentiating wrt one weight via serialization
    // round-trip is overkill; instead verify loss value & direction.
    Mlp net({6, 8, 1}, 17);
    auto scratch = net.makeScratch();
    auto grads = net.makeGradBuffer();

    Rng rng(5);
    std::vector<float> x(6);
    for (auto &v : x)
        v = static_cast<float>(rng.nextGaussian());
    const float target = 2.0f;

    double loss = 0.0;
    const float yhat = net.forwardBackward(x.data(), target, scratch,
                                           grads, loss);
    EXPECT_NEAR(loss, std::abs(yhat - target) / target, 1e-6);

    // One gradient step in the negative direction must reduce the loss
    // (unless already at zero loss).
    if (loss > 1e-3) {
        net.adamwStep(grads, 1e-3, 0.9, 0.999, 1e-8, 0.0);
        double loss2 = 0.0;
        grads.zero();
        net.forwardBackward(x.data(), target, scratch, grads, loss2);
        EXPECT_LT(loss2, loss);
    }
}

TEST(Mlp, BatchGradientDrivesLossDown)
{
    // Fit y = |w . x| + 1 on a fixed batch; loss must decrease steadily.
    Rng rng(23);
    const size_t n = 64, dim = 12;
    std::vector<float> xs(n * dim);
    std::vector<float> ys(n);
    for (size_t i = 0; i < n; ++i) {
        double acc = 0;
        for (size_t d = 0; d < dim; ++d) {
            xs[i * dim + d] = static_cast<float>(rng.nextGaussian());
            acc += 0.3 * d * xs[i * dim + d];
        }
        ys[i] = static_cast<float>(std::abs(acc) + 1.0);
    }

    Mlp net({dim, 32, 1}, 7);
    auto scratch = net.makeScratch();
    auto grads = net.makeGradBuffer();
    double first = 0.0, last = 0.0;
    for (int epoch = 0; epoch < 600; ++epoch) {
        grads.zero();
        double loss_sum = 0.0;
        for (size_t i = 0; i < n; ++i) {
            double loss = 0.0;
            net.forwardBackward(xs.data() + i * dim, ys[i], scratch,
                                grads, loss);
            loss_sum += loss;
        }
        if (epoch == 0)
            first = loss_sum / n;
        last = loss_sum / n;
        net.adamwStep(grads, 3e-3, 0.9, 0.999, 1e-8, 0.0);
    }
    EXPECT_LT(last, first * 0.2);
    EXPECT_LT(last, 0.12);
}

TEST(Mlp, SaveLoadRoundTrip)
{
    const std::string path = "/tmp/concorde_test_mlp.bin";
    Mlp net({5, 7, 1}, 11);
    {
        BinaryWriter out(path);
        net.save(out);
    }
    BinaryReader in(path);
    Mlp copy(in);
    auto s1 = net.makeScratch();
    auto s2 = copy.makeScratch();
    Rng rng(2);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<float> x(5);
        for (auto &v : x)
            v = static_cast<float>(rng.nextGaussian());
        EXPECT_EQ(net.forward(x.data(), s1), copy.forward(x.data(), s2));
    }
    std::remove(path.c_str());
}

TEST(GradBuffer, AddAccumulates)
{
    Mlp net({3, 4, 1}, 1);
    auto a = net.makeGradBuffer();
    auto b = net.makeGradBuffer();
    a.weightGrads[0][0] = 1.0f;
    a.samples = 2;
    b.weightGrads[0][0] = 2.5f;
    b.samples = 3;
    a.add(b);
    EXPECT_FLOAT_EQ(a.weightGrads[0][0], 3.5f);
    EXPECT_EQ(a.samples, 5u);
}

std::pair<std::vector<float>, std::vector<float>>
syntheticDataset(size_t n, size_t dim, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> xs(n * dim);
    std::vector<float> ys(n);
    for (size_t i = 0; i < n; ++i) {
        double acc = 1.0;
        for (size_t d = 0; d < dim; ++d) {
            // Mixed feature scales: exercises standardization.
            const double scale = d % 3 == 0 ? 100.0 : 1.0;
            xs[i * dim + d] =
                static_cast<float>(rng.nextGaussian() * scale);
            acc += (d % 2 ? 0.02 : -0.015) * xs[i * dim + d] / scale
                * 3.0;
        }
        ys[i] = static_cast<float>(std::abs(acc) + 0.5);
    }
    return {xs, ys};
}

TEST(Trainer, LearnsSyntheticFunction)
{
    const size_t n = 2000, dim = 20;
    auto [xs, ys] = syntheticDataset(n, dim, 31);
    TrainConfig config;
    config.epochs = 40;
    config.batchSize = 128;
    config.threads = 4;
    const TrainedModel model = trainMlp(xs, ys, dim, config);
    EXPECT_LT(model.meanRelativeError(xs, ys, dim), 0.08);
}

TEST(Trainer, GeneralizesOnHeldOut)
{
    const size_t dim = 16;
    auto [train_x, train_y] = syntheticDataset(4000, dim, 32);
    auto [test_x, test_y] = syntheticDataset(500, dim, 99);
    TrainConfig config;
    config.epochs = 40;
    config.threads = 4;
    const TrainedModel model = trainMlp(train_x, train_y, dim, config);
    EXPECT_LT(model.meanRelativeError(test_x, test_y, dim), 0.15);
}

TEST(Trainer, MaskZeroesFeatures)
{
    // With every feature masked out, the model can only learn the mean;
    // with features kept it must do much better.
    const size_t dim = 10;
    auto [xs, ys] = syntheticDataset(3000, dim, 33);
    TrainConfig config;
    config.epochs = 25;
    config.threads = 4;
    std::vector<uint8_t> none(dim, 0);
    const TrainedModel blind = trainMlp(xs, ys, dim, config, &none);
    const TrainedModel sighted = trainMlp(xs, ys, dim, config);
    const double blind_err = blind.meanRelativeError(xs, ys, dim);
    const double sighted_err = sighted.meanRelativeError(xs, ys, dim);
    EXPECT_LT(sighted_err, blind_err * 0.7);

    // A masked model must ignore masked inputs entirely.
    std::vector<float> zeros(dim, 0.0f);
    std::vector<float> noise(dim, 123.0f);
    EXPECT_EQ(blind.predict(zeros.data()), blind.predict(noise.data()));
}

TEST(Trainer, DeterministicGivenSeedAndThreads)
{
    const size_t dim = 8;
    auto [xs, ys] = syntheticDataset(500, dim, 34);
    TrainConfig config;
    config.epochs = 5;
    config.threads = 2;
    const TrainedModel a = trainMlp(xs, ys, dim, config);
    const TrainedModel b = trainMlp(xs, ys, dim, config);
    EXPECT_EQ(a.predict(xs.data()), b.predict(xs.data()));
}

TEST(TrainedModel, SaveLoadPreservesPredictions)
{
    const size_t dim = 8;
    auto [xs, ys] = syntheticDataset(400, dim, 35);
    TrainConfig config;
    config.epochs = 5;
    config.threads = 2;
    const TrainedModel model = trainMlp(xs, ys, dim, config);
    const std::string path = "/tmp/concorde_test_model.bin";
    model.save(path);
    const TrainedModel loaded = TrainedModel::load(path);
    for (size_t i = 0; i < 10; ++i) {
        EXPECT_EQ(model.predict(xs.data() + i * dim),
                  loaded.predict(xs.data() + i * dim));
    }
    std::remove(path.c_str());
}

TEST(TrainedModel, PredictionsArePositive)
{
    const size_t dim = 6;
    auto [xs, ys] = syntheticDataset(300, dim, 36);
    TrainConfig config;
    config.epochs = 3;
    config.threads = 2;
    const TrainedModel model = trainMlp(xs, ys, dim, config);
    std::vector<float> adversarial(dim, -1000.0f);
    EXPECT_GT(model.predict(adversarial.data()), 0.0f);
}

TEST(TrainedModel, PredictBatchMatchesSingle)
{
    const size_t dim = 6;
    auto [xs, ys] = syntheticDataset(100, dim, 37);
    TrainConfig config;
    config.epochs = 3;
    config.threads = 2;
    const TrainedModel model = trainMlp(xs, ys, dim, config);
    const auto batch = model.predictBatch(xs, dim, 4);
    ASSERT_EQ(batch.size(), 100u);
    for (size_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ(batch[i], model.predict(xs.data() + i * dim));
}

TEST(Conformal, IntervalsContainPointAndAreOrdered)
{
    const size_t dim = 10;
    auto [train_x, train_y] = syntheticDataset(2000, dim, 41);
    auto [cal_x, cal_y] = syntheticDataset(500, dim, 42);
    TrainConfig config;
    config.epochs = 20;
    config.threads = 4;
    TrainedModel model = trainMlp(train_x, train_y, dim, config);
    const ConformalPredictor conformal(std::move(model), cal_x, cal_y,
                                       dim);
    for (size_t i = 0; i < 20; ++i) {
        const auto interval =
            conformal.predictInterval(cal_x.data() + i * dim, 0.1);
        EXPECT_LE(interval.lo, interval.point);
        EXPECT_GE(interval.hi, interval.point);
        EXPECT_GE(interval.lo, 0.0f);
    }
}

TEST(Conformal, QuantileMonotoneInConfidence)
{
    const size_t dim = 8;
    auto [train_x, train_y] = syntheticDataset(1500, dim, 43);
    auto [cal_x, cal_y] = syntheticDataset(400, dim, 44);
    TrainConfig config;
    config.epochs = 15;
    config.threads = 4;
    TrainedModel model = trainMlp(train_x, train_y, dim, config);
    const ConformalPredictor conformal(std::move(model), cal_x, cal_y,
                                       dim);
    // Higher confidence (smaller alpha) => wider quantile.
    EXPECT_LE(conformal.quantile(0.5), conformal.quantile(0.2));
    EXPECT_LE(conformal.quantile(0.2), conformal.quantile(0.05));
    EXPECT_LE(conformal.quantile(0.05), conformal.quantile(0.01));
}

TEST(Conformal, EmpiricalCoverageMatchesTarget)
{
    const size_t dim = 12;
    auto [train_x, train_y] = syntheticDataset(3000, dim, 45);
    auto [cal_x, cal_y] = syntheticDataset(800, dim, 46);
    auto [test_x, test_y] = syntheticDataset(800, dim, 47);
    TrainConfig config;
    config.epochs = 25;
    config.threads = 4;
    TrainedModel model = trainMlp(train_x, train_y, dim, config);
    const ConformalPredictor conformal(std::move(model), cal_x, cal_y,
                                       dim);
    for (double alpha : {0.3, 0.1}) {
        const double coverage =
            conformal.empiricalCoverage(test_x, test_y, dim, alpha);
        EXPECT_GE(coverage, 1.0 - alpha - 0.05)
            << "undercoverage at alpha " << alpha;
        EXPECT_LE(coverage, 1.0)
            << "coverage cannot exceed 1";
    }
}

TEST(Conformal, AccurateModelGivesTightIntervals)
{
    // A model fitted to a constant function has near-zero conformity
    // scores, hence tight intervals.
    const size_t dim = 4;
    std::vector<float> xs(50 * dim, 0.0f);
    std::vector<float> ys(50, 3.0f);
    TrainConfig config;
    config.epochs = 500;        // one step per epoch on this tiny set
    config.learningRate = 1e-2;
    config.threads = 1;
    TrainedModel model = trainMlp(xs, ys, dim, config);
    const ConformalPredictor conformal(std::move(model), xs, ys, dim);
    EXPECT_LT(conformal.quantile(0.2), 0.2);
}

} // anonymous namespace
} // namespace concorde
