/**
 * @file
 * Tests for the synthetic workload generator and the Table-2 corpus:
 * determinism, chunk composability, dependency sanity, instruction-mix
 * plausibility, and phase behavior.
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/workloads.hh"

namespace concorde
{
namespace
{

TEST(Corpus, HasTwentyNinePrograms)
{
    const auto &corpus = workloadCorpus();
    ASSERT_EQ(corpus.size(), 29u);
    int proprietary = 0, cloud = 0, open = 0, spec = 0;
    for (const auto &info : corpus) {
        if (info.profile.group == "Proprietary")
            ++proprietary;
        else if (info.profile.group == "Cloud")
            ++cloud;
        else if (info.profile.group == "Open")
            ++open;
        else if (info.profile.group == "SPEC2017")
            ++spec;
    }
    EXPECT_EQ(proprietary, 13);
    EXPECT_EQ(cloud, 2);
    EXPECT_EQ(open, 4);
    EXPECT_EQ(spec, 10);
}

TEST(Corpus, CodesResolve)
{
    EXPECT_EQ(programIdByCode("P1"), 0);
    EXPECT_GE(programIdByCode("S1"), 0);
    EXPECT_GE(programIdByCode("O3"), 0);
    EXPECT_GE(programIdByCode("C2"), 0);
    EXPECT_EQ(programIdByCode("ZZ"), -1);
    // Codes are unique.
    std::set<std::string> codes;
    for (const auto &info : workloadCorpus())
        codes.insert(info.code());
    EXPECT_EQ(codes.size(), workloadCorpus().size());
}

TEST(Generator, DeterministicRegions)
{
    RegionSpec spec{3, 1, 17, 4};
    const auto a = generateRegion(spec);
    const auto b = generateRegion(spec);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].memAddr, b[i].memAddr);
        EXPECT_EQ(a[i].type, b[i].type);
        EXPECT_EQ(a[i].taken, b[i].taken);
        EXPECT_EQ(a[i].srcDeps[0], b[i].srcDeps[0]);
    }
}

TEST(Generator, RegionLengthMatchesSpec)
{
    RegionSpec spec{0, 0, 0, 3};
    EXPECT_EQ(generateRegion(spec).size(), 3u * kChunkLen);
}

TEST(Generator, ChunksComposeIntoRegions)
{
    // A 2-chunk region equals the concatenation of its two 1-chunk
    // regions, modulo dependency indices being region-relative.
    RegionSpec two{5, 0, 10, 2};
    RegionSpec first{5, 0, 10, 1};
    RegionSpec second{5, 0, 11, 1};
    const auto big = generateRegion(two);
    const auto a = generateRegion(first);
    const auto b = generateRegion(second);
    ASSERT_EQ(big.size(), a.size() + b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(big[i].pc, a[i].pc);
    for (size_t i = 0; i < b.size(); ++i) {
        EXPECT_EQ(big[a.size() + i].pc, b[i].pc);
        EXPECT_EQ(big[a.size() + i].memAddr, b[i].memAddr);
        // Chunk-local dependency, shifted by the base offset.
        if (b[i].srcDeps[0] >= 0) {
            EXPECT_EQ(big[a.size() + i].srcDeps[0],
                      b[i].srcDeps[0] + static_cast<int32_t>(a.size()));
        }
    }
}

TEST(Generator, TracesDiffer)
{
    RegionSpec t0{2, 0, 5, 1};
    RegionSpec t1{2, 1, 5, 1};
    const auto a = generateRegion(t0);
    const auto b = generateRegion(t1);
    size_t same = 0;
    for (size_t i = 0; i < a.size(); ++i)
        same += a[i].pc == b[i].pc;
    EXPECT_LT(same, a.size());
}

class AllProgramsTest : public ::testing::TestWithParam<int>
{
};

TEST_P(AllProgramsTest, RegionsAreWellFormed)
{
    const int pid = GetParam();
    RegionSpec spec{pid, 0, 2, 2};
    const auto region = generateRegion(spec);
    ASSERT_EQ(region.size(), 2u * kChunkLen);

    size_t loads = 0, stores = 0, branches = 0;
    for (size_t i = 0; i < region.size(); ++i) {
        const Instruction &instr = region[i];
        // Dependencies point strictly backward within the region.
        for (int d = 0; d < kMaxSrcDeps; ++d) {
            if (instr.srcDeps[d] >= 0) {
                ASSERT_LT(instr.srcDeps[d], static_cast<int32_t>(i));
                // Register deps reference value producers.
                EXPECT_TRUE(producesValue(region[instr.srcDeps[d]].type));
            }
        }
        if (instr.memDep >= 0) {
            ASSERT_LT(instr.memDep, static_cast<int32_t>(i));
            EXPECT_TRUE(region[instr.memDep].isStore());
            // Forwarding loads share the store's address.
            EXPECT_EQ(instr.memAddr, region[instr.memDep].memAddr);
        }
        if (instr.isMem()) {
            EXPECT_NE(instr.memAddr, 0u);
        }
        if (instr.isBranch()) {
            EXPECT_NE(instr.branchKind, BranchKind::None);
        }
        loads += instr.isLoad();
        stores += instr.isStore();
        branches += instr.isBranch();
    }
    EXPECT_GT(loads, 0u);
    EXPECT_GT(stores, 0u);
    EXPECT_GT(branches, 0u);

    // Instruction mix is in the neighborhood of the profile. The dynamic
    // mix legitimately deviates from the static mix (hot loops repeat
    // whatever their bodies contain), so only a loose band is asserted.
    const auto &prof = workloadCorpus()[pid].profile;
    const double observed = loads / static_cast<double>(region.size());
    EXPECT_GT(observed, prof.fracLoad * 0.3);
    EXPECT_LT(observed, prof.fracLoad * 2.5);
}

TEST_P(AllProgramsTest, StaticBlocksHaveStableOpcodes)
{
    // Same PC => same opcode class (static code property).
    const int pid = GetParam();
    RegionSpec spec{pid, 0, 0, 2};
    const auto region = generateRegion(spec);
    std::map<uint64_t, InstrType> opcode_at;
    for (const auto &instr : region) {
        if (instr.isIsb())
            continue;   // barriers are dynamic events
        auto [it, inserted] = opcode_at.try_emplace(instr.pc, instr.type);
        if (!inserted) {
            EXPECT_EQ(it->second, instr.type) << "pc " << instr.pc;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Corpus, AllProgramsTest, ::testing::Range(0, 29));

TEST(Phases, PhaseIndexCyclesDeterministically)
{
    const int pid = programIdByCode("P9");
    const ProgramModel &model = programModel(pid);
    const auto &prof = workloadCorpus()[pid].profile;
    ASSERT_GT(prof.phases.size(), 1u);
    EXPECT_EQ(model.phaseOf(0), 0u);
    EXPECT_EQ(model.phaseOf(prof.chunksPerPhase), 1u);
    EXPECT_EQ(model.phaseOf(prof.chunksPerPhase * prof.phases.size()), 0u);
}

TEST(Phases, ScatterPhaseTouchesMoreLines)
{
    // P9's scatter phase (index 9) touches far more distinct data lines
    // than its hot phase (the Figure-17 behavior).
    const int pid = programIdByCode("P9");
    const auto &prof = workloadCorpus()[pid].profile;
    const uint64_t hot_chunk = 0;
    const uint64_t scatter_chunk = 9 * prof.chunksPerPhase;
    ASSERT_EQ(programModel(pid).phaseOf(scatter_chunk), 9u);

    auto distinct_lines = [&](uint64_t chunk) {
        RegionSpec spec{pid, 0, chunk, 1};
        std::set<uint64_t> lines;
        for (const auto &instr : generateRegion(spec)) {
            if (instr.isLoad())
                lines.insert(instr.dataLine());
        }
        return lines.size();
    };
    EXPECT_GT(static_cast<double>(distinct_lines(scatter_chunk)),
              1.3 * static_cast<double>(distinct_lines(hot_chunk)));
}

TEST(Sampling, RegionWithinTraceBounds)
{
    Rng rng(77);
    for (int i = 0; i < 200; ++i) {
        const RegionSpec spec = sampleRegion(rng, 8);
        const auto &info = workloadCorpus()[spec.programId];
        EXPECT_LT(spec.traceId, info.numTraces);
        EXPECT_LE(spec.startChunk + spec.numChunks, info.chunksPerTrace);
    }
}

TEST(Sampling, FromProgramRespectsProgram)
{
    Rng rng(78);
    for (int i = 0; i < 50; ++i) {
        const RegionSpec spec = sampleRegionFromProgram(rng, 7, 4);
        EXPECT_EQ(spec.programId, 7);
    }
}

TEST(Sampling, RandomRegionsRarelyOverlap)
{
    // The corpus is large enough that two independently sampled regions
    // almost never overlap (the Figure-4 no-memorization property).
    Rng rng(79);
    std::vector<RegionSpec> specs;
    for (int i = 0; i < 300; ++i)
        specs.push_back(sampleRegion(rng, 8));
    size_t overlapping = 0;
    for (size_t a = 0; a < specs.size(); ++a) {
        for (size_t b = a + 1; b < specs.size(); ++b) {
            if (specs[a].programId != specs[b].programId
                || specs[a].traceId != specs[b].traceId) {
                continue;
            }
            const uint64_t lo = std::max(specs[a].startChunk,
                                         specs[b].startChunk);
            const uint64_t hi = std::min(
                specs[a].startChunk + specs[a].numChunks,
                specs[b].startChunk + specs[b].numChunks);
            overlapping += hi > lo;
        }
    }
    EXPECT_LT(overlapping, 10u);
}

TEST(Generator, IndirectTargetsShowTemporalLocality)
{
    // Indirect branches repeat their last target often enough for a
    // last-target predictor to be useful (interpreter-dispatch realism).
    const int pid = programIdByCode("S8");
    RegionSpec spec{pid, 0, 0, 24};
    const auto region = generateRegion(spec);
    std::map<uint64_t, uint16_t> last_target;
    size_t repeats = 0, total = 0;
    for (const auto &instr : region) {
        if (instr.branchKind != BranchKind::Indirect)
            continue;
        auto [it, inserted] =
            last_target.try_emplace(instr.pc, instr.targetId);
        if (!inserted) {
            ++total;
            repeats += it->second == instr.targetId;
            it->second = instr.targetId;
        }
    }
    ASSERT_GT(total, 5u);
    const double repeat_rate =
        static_cast<double>(repeats) / static_cast<double>(total);
    EXPECT_GT(repeat_rate, 0.3);
    EXPECT_LE(repeat_rate, 1.0);
}

TEST(Generator, StreamLoadsHaveConstantPerPcStride)
{
    // A static sequential-stream load walks one stream with a constant
    // stride (prefetcher trainability).
    const int pid = programIdByCode("P1");
    RegionSpec spec{pid, 0, 2, 2};
    const auto region = generateRegion(spec);
    std::map<uint64_t, std::vector<uint64_t>> per_pc;
    for (const auto &instr : region) {
        if (instr.isLoad())
            per_pc[instr.pc].push_back(instr.memAddr);
    }
    size_t strided_pcs = 0, multi_pcs = 0;
    for (const auto &[pc, addrs] : per_pc) {
        if (addrs.size() < 8)
            continue;
        ++multi_pcs;
        // Robust to chunk-boundary restarts: count the modal delta.
        std::map<int64_t, size_t> deltas;
        for (size_t i = 1; i < addrs.size(); ++i) {
            ++deltas[static_cast<int64_t>(addrs[i])
                     - static_cast<int64_t>(addrs[i - 1])];
        }
        size_t modal_count = 0;
        int64_t modal = 0;
        for (const auto &[d, c] : deltas) {
            if (c > modal_count) {
                modal_count = c;
                modal = d;
            }
        }
        strided_pcs += modal != 0
            && modal_count * 10 >= (addrs.size() - 1) * 7;
    }
    ASSERT_GT(multi_pcs, 3u);
    // P1 is stream heavy: a healthy share of its hot loads are strided.
    EXPECT_GE(strided_pcs, std::max<size_t>(1, multi_pcs / 4));
}

TEST(Generator, ChaseLoadsFormDependencyChains)
{
    const int pid = programIdByCode("S1");
    RegionSpec spec{pid, 0, 0, 2};
    const auto region = generateRegion(spec);
    // Find load->load dependency chains (the defining mcf pattern).
    size_t load_on_load = 0;
    for (const auto &instr : region) {
        if (!instr.isLoad() || instr.srcDeps[0] < 0)
            continue;
        load_on_load += region[instr.srcDeps[0]].isLoad();
    }
    EXPECT_GT(load_on_load, 200u);
}

} // anonymous namespace
} // namespace concorde
