/**
 * @file
 * GoldenHarness: the committed golden-reference corpus for the
 * end-to-end pipeline. Each case pins a small canned trace span, a
 * design point, a feature configuration, and a deterministic untrained
 * model; the committed file holds the expected per-region CPIs, the
 * whole-program CPI, and the first region's full feature row for BOTH
 * state conventions (independent warmup replay and carried state).
 *
 * Every pipeline configuration must reproduce these numbers: the scalar
 * region loop is the reference executor, and the sharded and
 * service-backed executors must match it bitwise (test_golden).
 *
 * Regeneration: CONCORDE_REGEN_GOLDEN=1 ./tests/test_golden rewrites
 * the corpus in place (see tests/golden/README.md). CI only ever diffs.
 */

#ifndef CONCORDE_TESTS_GOLDEN_HARNESS_HH
#define CONCORDE_TESTS_GOLDEN_HARNESS_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/artifacts.hh"
#include "pipeline/analysis_pipeline.hh"
#include "trace/workloads.hh"

namespace concorde
{
namespace golden
{

/** One committed golden case. */
struct GoldenCase
{
    std::string name;
    TraceSpan span;
    uint32_t regionChunks = 2;
    UarchParams params;
    FeatureConfig features;
    std::vector<size_t> hidden;     ///< untrained-model hidden widths
    uint64_t modelSeed = 0;
};

/** Expected outputs of a case, one block per state convention. */
struct GoldenRecord
{
    std::vector<double> cpiIndependent;
    std::vector<double> cpiCarry;
    double programCpiIndependent = 0.0;
    double programCpiCarry = 0.0;
    /** First region's full feature row under each convention. */
    std::vector<float> featuresIndependent;
    std::vector<float> featuresCarry;
};

/** Shrunken feature space shared by the fast cases. */
inline FeatureConfig
smallFeatures()
{
    FeatureConfig cfg;
    cfg.numPercentiles = 5;
    cfg.robSweep = {4, 64};
    cfg.latencyRobSizes = {4, 64};
    return cfg;
}

/** The committed corpus (stable names; files live in tests/golden/). */
inline std::vector<GoldenCase>
corpus()
{
    std::vector<GoldenCase> cases;

    {
        GoldenCase c;
        c.name = "s7_tage_small";
        c.span.programId = programIdByCode("S7");
        c.span.startChunk = 16;
        c.span.numChunks = 4;
        c.regionChunks = 2;
        c.params = UarchParams::armN1();
        c.features = smallFeatures();
        c.hidden = {16};
        c.modelSeed = 101;
        cases.push_back(std::move(c));
    }
    {
        GoldenCase c;
        c.name = "p1_simplebp_prefetch";
        c.span.programId = programIdByCode("P1");
        c.span.startChunk = 24;
        c.span.numChunks = 3;
        c.regionChunks = 1;
        c.params = UarchParams::armN1();
        c.params.robSize = 512;
        c.params.branch.type = BranchConfig::Type::Simple;
        c.params.branch.simpleMispredictPct = 10;
        c.params.memory.prefetchDegree = 4;
        c.features = smallFeatures();
        c.hidden = {16};
        c.modelSeed = 102;
        cases.push_back(std::move(c));
    }
    {
        // One case on the full Table-3 layout: locks the production
        // feature dimension and block order against silent drift.
        GoldenCase c;
        c.name = "c1_full_layout";
        c.span.programId = programIdByCode("C1");
        c.span.startChunk = 16;
        c.span.numChunks = 2;
        c.regionChunks = 1;
        c.params = UarchParams::armN1();
        c.params.lqSize = 64;
        c.features = FeatureConfig{};
        c.hidden = {32};
        c.modelSeed = 103;
        cases.push_back(std::move(c));
    }
    return cases;
}

inline ConcordePredictor
predictorFor(const GoldenCase &c)
{
    return ConcordePredictor(
        artifacts::untrainedModel(c.features, c.modelSeed, c.hidden),
        c.features);
}

/**
 * Compute a case's record with the reference executor: the scalar
 * region loop under both state conventions, default warmup (the serve
 * layer's convention).
 */
inline GoldenRecord
compute(const GoldenCase &c)
{
    const ConcordePredictor predictor = predictorFor(c);
    GoldenRecord record;

    pipeline::PipelineConfig config;
    config.regionChunks = c.regionChunks;
    config.mode = pipeline::ExecMode::Scalar;
    config.keepFeatures = true;

    config.state = pipeline::StateMode::Independent;
    {
        pipeline::AnalysisPipeline pipe(predictor, config);
        const auto result = pipe.run(c.span, c.params);
        record.cpiIndependent = result.regionCpi;
        record.programCpiIndependent = result.programCpi;
        record.featuresIndependent.assign(
            result.features.begin(),
            result.features.begin() + result.featureDim);
    }
    config.state = pipeline::StateMode::Carry;
    {
        pipeline::AnalysisPipeline pipe(predictor, config);
        const auto result = pipe.run(c.span, c.params);
        record.cpiCarry = result.regionCpi;
        record.programCpiCarry = result.programCpi;
        record.featuresCarry.assign(
            result.features.begin(),
            result.features.begin() + result.featureDim);
    }
    return record;
}

/** Directory of the committed corpus (env overrides the build-time path). */
inline std::string
directory()
{
    const char *env = std::getenv("CONCORDE_GOLDEN_DIR");
    if (env && *env)
        return env;
#ifdef CONCORDE_GOLDEN_DIR
    return CONCORDE_GOLDEN_DIR;
#else
    return "tests/golden";
#endif
}

inline std::string
path(const GoldenCase &c)
{
    return directory() + "/" + c.name + ".golden";
}

inline bool
regenRequested()
{
    const char *env = std::getenv("CONCORDE_REGEN_GOLDEN");
    return env && *env && std::string(env) != "0";
}

inline void
write(const std::string &file, const GoldenRecord &record)
{
    FILE *f = std::fopen(file.c_str(), "w");
    if (!f) {
        std::perror(file.c_str());
        std::abort();
    }
    std::fprintf(f, "concorde-golden v1\n");
    auto put_doubles = [&](const char *key,
                           const std::vector<double> &values) {
        std::fprintf(f, "%s %zu", key, values.size());
        for (double v : values)
            std::fprintf(f, " %.17g", v);
        std::fprintf(f, "\n");
    };
    auto put_floats = [&](const char *key,
                          const std::vector<float> &values) {
        std::fprintf(f, "%s %zu", key, values.size());
        for (float v : values)
            std::fprintf(f, " %.9g", static_cast<double>(v));
        std::fprintf(f, "\n");
    };
    put_doubles("cpi_independent", record.cpiIndependent);
    std::fprintf(f, "program_cpi_independent %.17g\n",
                 record.programCpiIndependent);
    put_doubles("cpi_carry", record.cpiCarry);
    std::fprintf(f, "program_cpi_carry %.17g\n", record.programCpiCarry);
    put_floats("features_independent", record.featuresIndependent);
    put_floats("features_carry", record.featuresCarry);
    std::fclose(f);
}

inline bool
read(const std::string &file, GoldenRecord &record)
{
    FILE *f = std::fopen(file.c_str(), "r");
    if (!f)
        return false;
    char header[64] = {0};
    bool ok = std::fscanf(f, "concorde-golden v%63s", header) == 1
        && std::string(header) == "1";

    auto get_doubles = [&](const char *key, std::vector<double> &values) {
        char name[64] = {0};
        size_t n = 0;
        if (std::fscanf(f, "%63s %zu", name, &n) != 2
            || std::string(name) != key) {
            return false;
        }
        values.resize(n);
        for (size_t i = 0; i < n; ++i) {
            if (std::fscanf(f, "%lg", &values[i]) != 1)
                return false;
        }
        return true;
    };
    auto get_scalar = [&](const char *key, double &value) {
        char name[64] = {0};
        return std::fscanf(f, "%63s %lg", name, &value) == 2
            && std::string(name) == key;
    };
    auto get_floats = [&](const char *key, std::vector<float> &values) {
        char name[64] = {0};
        size_t n = 0;
        if (std::fscanf(f, "%63s %zu", name, &n) != 2
            || std::string(name) != key) {
            return false;
        }
        values.resize(n);
        for (size_t i = 0; i < n; ++i) {
            if (std::fscanf(f, "%g", &values[i]) != 1)
                return false;
        }
        return true;
    };

    ok = ok && get_doubles("cpi_independent", record.cpiIndependent);
    ok = ok && get_scalar("program_cpi_independent",
                          record.programCpiIndependent);
    ok = ok && get_doubles("cpi_carry", record.cpiCarry);
    ok = ok && get_scalar("program_cpi_carry", record.programCpiCarry);
    ok = ok && get_floats("features_independent",
                          record.featuresIndependent);
    ok = ok && get_floats("features_carry", record.featuresCarry);
    std::fclose(f);
    return ok;
}

} // namespace golden
} // namespace concorde

#endif // CONCORDE_TESTS_GOLDEN_HARNESS_HH
