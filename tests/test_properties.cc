/**
 * @file
 * Property-based tests: random traces drawn through the
 * ProgramModel/workloads generators and random design points, asserting
 * invariants the model promises -- analytical lower bounds below
 * simulated CPI, split-choice invariance of stitched analysis, and
 * permutation invariance of the distribution encoding.
 *
 * Every draw is seeded, so each "random" case is deterministic and a
 * failure reproduces exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analytical/feature_provider.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "golden_harness.hh"
#include "sim/o3_core.hh"
#include "trace/workloads.hh"

using namespace concorde;

namespace
{

FeatureConfig
tinyConfig()
{
    return golden::smallFeatures();
}

/** Smallest static pipeline width of a design point. */
double
staticWidth(const UarchParams &params)
{
    return std::min({static_cast<double>(params.fetchWidth),
                     static_cast<double>(params.decodeWidth),
                     static_cast<double>(params.renameWidth),
                     static_cast<double>(params.commitWidth)});
}

} // anonymous namespace

TEST(Properties, MinBoundRespectsStructuralLimits)
{
    Rng rng(2026);
    for (int draw = 0; draw < 4; ++draw) {
        const RegionSpec spec = sampleRegion(rng, 1);
        const UarchParams params = UarchParams::sampleRandom(rng);
        FeatureProvider provider(spec, tinyConfig(), 2);

        // The analytical CPI lower bound can never promise more than the
        // narrowest static stage sustains...
        const double min_bound = provider.cpiMinBound(params);
        EXPECT_GE(min_bound, 1.0 / staticWidth(params) - 1e-12)
            << "draw " << draw;
        // ...or than the global throughput cap.
        EXPECT_GE(min_bound, 1.0 / kMaxThroughput - 1e-12);

        // Adding resource bounds can only tighten the estimate: the min
        // bound dominates the CPI implied by the ROB bound alone.
        const auto &rob =
            provider.robWindows(params.robSize, params.memory);
        double rob_cpi = 0.0;
        for (double thr : rob)
            rob_cpi += 1.0 / std::max(thr, 1e-6);
        rob_cpi /= std::max<size_t>(rob.size(), 1);
        EXPECT_GE(min_bound, rob_cpi - 1e-9) << "draw " << draw;
    }
}

TEST(Properties, SimulatedCpiAtLeastAnalyticalLowerBound)
{
    // The per-window min bound is an optimistic throughput estimate
    // (paper Figure 1): the reference simulator can never beat it, and
    // can never beat the commit width either.
    Rng rng(77);
    for (int draw = 0; draw < 3; ++draw) {
        const RegionSpec spec = sampleRegion(rng, 1);
        const UarchParams params = UarchParams::sampleRandom(rng);
        FeatureProvider provider(spec, tinyConfig(), 2);
        RegionAnalysis analysis(spec, 2);

        const SimResult result = simulateRegion(params, analysis);
        ASSERT_GT(result.instructions, 0u);
        const double sim_cpi = result.cpi();
        EXPECT_GE(sim_cpi, 1.0 / params.commitWidth - 1e-12)
            << "draw " << draw;
        EXPECT_GE(sim_cpi, provider.cpiMinBound(params) - 1e-9)
            << "draw " << draw;
    }
}

TEST(Properties, StitchedAnalysisInvariantToRandomSplits)
{
    // Shard-count invariance: however a random trace is split, the
    // carried-state analysis concatenates to the same per-instruction
    // results (the randomized cousin of the exhaustive
    // BoundaryStitching test).
    Rng rng(4242);
    for (int draw = 0; draw < 3; ++draw) {
        const RegionSpec spec = sampleRegion(rng, 4);
        const UarchParams params = UarchParams::sampleRandom(rng);
        const ProgramModel &model = programModel(spec.programId);
        const auto instrs = model.generateRegion(spec);
        const uint64_t seed =
            branchSeedFor(spec.programId, spec.traceId, spec.startChunk);

        auto analyze = [&](const std::vector<size_t> &splits) {
            AnalyzerCarryState carry(params.memory, params.branch, seed);
            std::vector<int32_t> exec_lat;
            std::vector<uint8_t> mispredict;
            size_t at = 0;
            for (size_t size : splits) {
                const std::vector<Instruction> shard(
                    instrs.begin() + at, instrs.begin() + at + size);
                at += size;
                const DSideAnalysis d = carry.analyzeDside(shard);
                const ISideAnalysis is = carry.analyzeIside(shard);
                const BranchAnalysis b = carry.analyzeBranches(shard);
                (void)is;
                exec_lat.insert(exec_lat.end(), d.execLat.begin(),
                                d.execLat.end());
                mispredict.insert(mispredict.end(), b.mispredict.begin(),
                                  b.mispredict.end());
            }
            EXPECT_EQ(at, instrs.size());
            return std::make_pair(exec_lat, mispredict);
        };

        const auto unsplit = analyze({instrs.size()});
        // Two random chunk-aligned split points per draw.
        for (int trial = 0; trial < 2; ++trial) {
            const size_t cut = kChunkLen
                * (1 + rng.nextBounded(spec.numChunks - 1));
            const auto split = analyze({cut, instrs.size() - cut});
            EXPECT_EQ(split.first, unsplit.first);
            EXPECT_EQ(split.second, unsplit.second);
        }
    }
}

TEST(Properties, EncoderPermutationInvariance)
{
    // The CDF encoding is a function of the sample multiset; the model
    // promises order blindness. Percentiles sort internally (exact);
    // the mean is a sum whose rounding may differ across orders, so the
    // comparison allows for round-off.
    Rng rng(99);
    DistributionEncoder encoder(7);
    for (int draw = 0; draw < 4; ++draw) {
        const size_t n = 1 + rng.nextBounded(300);
        std::vector<double> samples(n);
        for (auto &x : samples)
            x = rng.nextDouble() * 40.0;

        std::vector<float> base;
        encoder.encode(samples, base);

        std::vector<double> shuffled = samples;
        for (size_t i = shuffled.size(); i > 1; --i)
            std::swap(shuffled[i - 1], shuffled[rng.nextBounded(i)]);
        std::vector<float> enc;
        encoder.encode(shuffled, enc);

        ASSERT_EQ(enc.size(), base.size());
        for (size_t i = 0; i < base.size(); ++i) {
            EXPECT_NEAR(enc[i], base[i],
                        1e-5 * std::abs(base[i]) + 1e-6)
                << "component " << i;
        }
    }
}

TEST(Properties, TraceGenerationIsDeterministic)
{
    // A region is a pure function of (program seed, trace id, chunk
    // range): regenerating it yields identical instructions, which is
    // what lets the pipeline shard without materializing the trace.
    Rng rng(31);
    for (int draw = 0; draw < 3; ++draw) {
        const RegionSpec spec = sampleRegion(rng, 2);
        const ProgramModel &model = programModel(spec.programId);
        const auto a = model.generateRegion(spec);
        const auto b = model.generateRegion(spec);
        ASSERT_EQ(a.size(), b.size());
        ASSERT_EQ(a.size(), spec.numInstructions());
        for (size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].pc, b[i].pc);
            EXPECT_EQ(a[i].memAddr, b[i].memAddr);
            EXPECT_EQ(static_cast<int>(a[i].type),
                      static_cast<int>(b[i].type));
            if (a[i].pc != b[i].pc || a[i].memAddr != b[i].memAddr)
                break;
        }
    }
}
