/**
 * @file
 * Golden-reference tests (ctest label: golden): the committed corpus in
 * tests/golden/ pins the end-to-end pipeline's features and CPIs, and
 * every executor -- scalar region loop, sharded ThreadPool pipeline,
 * and the service-backed endpoint -- must reproduce it. The scalar
 * executor is compared against the committed files with a tight
 * tolerance (to absorb libm round-off across toolchains); the other
 * executors are compared against the scalar one bitwise.
 *
 * Regenerate with CONCORDE_REGEN_GOLDEN=1 (tests/golden/README.md);
 * CI never regenerates.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "golden_harness.hh"
#include "serve/prediction_service.hh"

using namespace concorde;
using golden::GoldenCase;
using golden::GoldenRecord;

namespace
{

void
expectClose(const std::vector<double> &actual,
            const std::vector<double> &expected, const char *what)
{
    ASSERT_EQ(actual.size(), expected.size()) << what;
    for (size_t i = 0; i < actual.size(); ++i) {
        EXPECT_NEAR(actual[i], expected[i],
                    1e-9 + 1e-6 * std::abs(expected[i]))
            << what << " [" << i << "]";
    }
}

void
expectFeaturesClose(const std::vector<float> &actual,
                    const std::vector<float> &expected, const char *what)
{
    ASSERT_EQ(actual.size(), expected.size()) << what;
    size_t mismatches = 0;
    for (size_t i = 0; i < actual.size(); ++i) {
        const double tol =
            1e-6 + 1e-5 * std::abs(static_cast<double>(expected[i]));
        if (std::abs(static_cast<double>(actual[i]) - expected[i]) > tol) {
            if (++mismatches <= 5) {
                ADD_FAILURE() << what << " [" << i << "]: "
                              << actual[i] << " vs golden "
                              << expected[i];
            }
        }
    }
    EXPECT_EQ(mismatches, 0u) << what;
}

} // anonymous namespace

TEST(GoldenCorpus, ScalarPipelineMatchesCommittedFiles)
{
    for (const GoldenCase &c : golden::corpus()) {
        SCOPED_TRACE(c.name);
        const GoldenRecord actual = golden::compute(c);

        if (golden::regenRequested()) {
            golden::write(golden::path(c), actual);
            std::printf("regenerated %s\n", golden::path(c).c_str());
            continue;
        }

        GoldenRecord expected;
        ASSERT_TRUE(golden::read(golden::path(c), expected))
            << "missing or malformed " << golden::path(c)
            << " -- regenerate with CONCORDE_REGEN_GOLDEN=1 "
            << "(tests/golden/README.md)";

        expectClose(actual.cpiIndependent, expected.cpiIndependent,
                    "cpi_independent");
        expectClose(actual.cpiCarry, expected.cpiCarry, "cpi_carry");
        EXPECT_NEAR(actual.programCpiIndependent,
                    expected.programCpiIndependent,
                    1e-9 + 1e-6
                        * std::abs(expected.programCpiIndependent));
        EXPECT_NEAR(actual.programCpiCarry, expected.programCpiCarry,
                    1e-9 + 1e-6 * std::abs(expected.programCpiCarry));
        expectFeaturesClose(actual.featuresIndependent,
                            expected.featuresIndependent,
                            "features_independent");
        expectFeaturesClose(actual.featuresCarry, expected.featuresCarry,
                            "features_carry");
    }
}

TEST(GoldenCorpus, ShardedPipelineBitwiseIdenticalToScalar)
{
    for (const GoldenCase &c : golden::corpus()) {
        SCOPED_TRACE(c.name);
        const ConcordePredictor predictor = golden::predictorFor(c);
        for (auto state : {pipeline::StateMode::Independent,
                           pipeline::StateMode::Carry}) {
            pipeline::PipelineConfig config;
            config.regionChunks = c.regionChunks;
            config.state = state;
            config.keepFeatures = true;

            config.mode = pipeline::ExecMode::Scalar;
            pipeline::AnalysisPipeline scalar(predictor, config);
            const auto scalar_result = scalar.run(c.span, c.params);

            config.mode = pipeline::ExecMode::Sharded;
            config.threads = 3;
            pipeline::AnalysisPipeline sharded(predictor, config);
            const auto sharded_result = sharded.run(c.span, c.params);

            ASSERT_EQ(scalar_result.regionCpi.size(),
                      sharded_result.regionCpi.size());
            for (size_t i = 0; i < scalar_result.regionCpi.size(); ++i) {
                EXPECT_EQ(scalar_result.regionCpi[i],
                          sharded_result.regionCpi[i])
                    << "region " << i;
            }
            EXPECT_EQ(scalar_result.programCpi,
                      sharded_result.programCpi);
            EXPECT_EQ(scalar_result.features, sharded_result.features);
        }
    }
}

TEST(GoldenCorpus, ServiceEndpointBitwiseIdenticalToScalar)
{
    for (const GoldenCase &c : golden::corpus()) {
        SCOPED_TRACE(c.name);
        pipeline::PipelineConfig config;
        config.regionChunks = c.regionChunks;
        config.mode = pipeline::ExecMode::Scalar;
        config.state = pipeline::StateMode::Independent;
        const ConcordePredictor predictor = golden::predictorFor(c);
        pipeline::AnalysisPipeline scalar(predictor, config);
        const auto reference = scalar.run(c.span, c.params);

        serve::ServeConfig sc;
        sc.poolThreads = 2;
        serve::PredictionService service(sc);
        service.registry().add(c.name, golden::predictorFor(c));
        const auto served =
            service.predictSpan(c.name, c.span, c.regionChunks, c.params);

        ASSERT_EQ(served.regionCpi.size(), reference.regionCpi.size());
        for (size_t i = 0; i < reference.regionCpi.size(); ++i)
            EXPECT_EQ(served.regionCpi[i], reference.regionCpi[i])
                << "region " << i;
        EXPECT_EQ(served.programCpi, reference.programCpi);
    }
}
