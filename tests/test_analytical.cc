/**
 * @file
 * Tests for the per-resource analytical models (Section 3.2) and the
 * feature provider: exact width bounds, monotonicity properties, window
 * conversion, memoization, and layout integrity.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analytical/feature_provider.hh"
#include "analytical/frontend_models.hh"
#include "analytical/lsq_model.hh"
#include "analytical/rob_model.hh"
#include "analytical/width_models.hh"
#include "trace/workloads.hh"

namespace concorde
{
namespace
{

std::vector<Instruction>
chainRegion(size_t n, int dep_dist, int32_t lat_type_alu = 1)
{
    (void)lat_type_alu;
    std::vector<Instruction> region(n);
    for (size_t i = 0; i < n; ++i) {
        region[i].type = InstrType::IntAlu;
        region[i].pc = 0x1000 + (i % 16) * 4;
        if (dep_dist > 0 && i >= static_cast<size_t>(dep_dist)) {
            region[i].srcDeps[0] =
                static_cast<int32_t>(i) - dep_dist;
        }
    }
    return region;
}

TEST(Windows, ThroughputFromBoundaries)
{
    // Windows ending at cycles 100, 300: thr = 400/100, 400/200.
    const auto thr = throughputFromBoundaries({100, 300}, 400);
    ASSERT_EQ(thr.size(), 2u);
    EXPECT_DOUBLE_EQ(thr[0], 4.0);
    EXPECT_DOUBLE_EQ(thr[1], 2.0);
}

TEST(Windows, ZeroDeltaIsCapped)
{
    const auto thr = throughputFromBoundaries({50, 50}, 400);
    EXPECT_DOUBLE_EQ(thr[1], kMaxThroughput);
}

TEST(Windows, CountsPartitionInstructions)
{
    RegionSpec spec{programIdByCode("O2"), 0, 0, 2};
    const auto region = generateRegion(spec);
    const auto counts = WindowCounts::build(region, 400);
    EXPECT_EQ(counts.windows(), region.size() / 400);
    for (size_t j = 0; j < counts.windows(); ++j) {
        EXPECT_EQ(counts.nAlu[j] + counts.nFp[j] + counts.nLs[j], 400u);
        EXPECT_EQ(counts.nLs[j], counts.nLoad[j] + counts.nStore[j]);
    }
}

TEST(RobModel, SerialChainBoundsAtOne)
{
    // Unit-latency serial chain: throughput ~1 regardless of ROB size.
    const auto region = chainRegion(4000, 1);
    const auto index = LoadLineIndex::build(region);
    std::vector<int32_t> lat(region.size(), 1);
    const auto result = runRobModel(region, index, lat, 512, 400, false);
    EXPECT_NEAR(result.overallIpc, 1.0, 0.05);
}

TEST(RobModel, RobOneSerializes)
{
    const auto region = chainRegion(4000, 0);   // independent
    const auto index = LoadLineIndex::build(region);
    std::vector<int32_t> lat(region.size(), 3);
    const auto result = runRobModel(region, index, lat, 1, 400, false);
    // One instruction in flight at a time: IPC = 1/3.
    EXPECT_NEAR(result.overallIpc, 1.0 / 3.0, 0.02);
}

TEST(RobModel, IndependentInstructionsUncapped)
{
    const auto region = chainRegion(4000, 0);
    const auto index = LoadLineIndex::build(region);
    std::vector<int32_t> lat(region.size(), 1);
    const auto result = runRobModel(region, index, lat, 1024, 400, false);
    // No dependencies, huge ROB: bound hits the throughput cap.
    EXPECT_GT(result.overallIpc, 30.0);
}

TEST(RobModel, LatenciesCollectedAndConsistent)
{
    const auto region = chainRegion(2000, 2);
    const auto index = LoadLineIndex::build(region);
    std::vector<int32_t> lat(region.size(), 5);
    const auto result = runRobModel(region, index, lat, 64, 400, true);
    ASSERT_EQ(result.issueLat.size(), region.size());
    ASSERT_EQ(result.execLat.size(), region.size());
    ASSERT_EQ(result.commitLat.size(), region.size());
    for (size_t i = 0; i < region.size(); ++i) {
        EXPECT_GE(result.issueLat[i], 0.0);
        EXPECT_DOUBLE_EQ(result.execLat[i], 5.0);
        EXPECT_GE(result.commitLat[i], 0.0);
    }
}

TEST(RobModel, IsbDrainsPipeline)
{
    auto region = chainRegion(2000, 0);
    for (size_t i = 100; i < region.size(); i += 100)
        region[i].type = InstrType::Isb;
    const auto index = LoadLineIndex::build(region);
    std::vector<int32_t> lat(region.size(), 1);
    const auto with_isb = runRobModel(region, index, lat, 256, 400, false);
    const auto baseline =
        runRobModel(chainRegion(2000, 0), LoadLineIndex::build(region),
                    lat, 256, 400, false);
    EXPECT_LT(with_isb.overallIpc, baseline.overallIpc);
}

class RobMonotonicity : public ::testing::TestWithParam<const char *>
{
};

TEST_P(RobMonotonicity, ThroughputNonDecreasingInRobSize)
{
    RegionSpec spec{programIdByCode(GetParam()), 0, 2, 2};
    RegionAnalysis analysis(spec, 1);
    const auto &dside = analysis.dside(MemoryConfig{});
    double prev = 0.0;
    for (int rob : {1, 4, 16, 64, 256, 1024}) {
        const auto result =
            runRobModel(analysis.instrs(), analysis.loadIndex(),
                        dside.execLat, rob, 400, false);
        EXPECT_GE(result.overallIpc, prev * 0.999)
            << "ROB " << rob;
        prev = result.overallIpc;
    }
}

INSTANTIATE_TEST_SUITE_P(Programs, RobMonotonicity,
                         ::testing::Values("P1", "S1", "S5", "O3", "C1"));

TEST(LsqModel, NoLoadsMeansUnbounded)
{
    const auto region = chainRegion(2000, 0);
    const auto index = LoadLineIndex::build(region);
    std::vector<int32_t> lat(region.size(), 1);
    const auto thr = runLoadQueueModel(region, index, lat, 4, 400);
    for (double t : thr)
        EXPECT_DOUBLE_EQ(t, kMaxThroughput);
}

TEST(LsqModel, QueueOfOneSerializesLoads)
{
    std::vector<Instruction> region(2000);
    for (size_t i = 0; i < region.size(); ++i) {
        region[i].type = InstrType::Load;
        region[i].memAddr = 0x100000 + i * 64;
        region[i].pc = 0x1000;
    }
    const auto index = LoadLineIndex::build(region);
    std::vector<int32_t> lat(region.size(), 4);
    const auto thr = runLoadQueueModel(region, index, lat, 1, 400);
    // One load per 4 cycles.
    EXPECT_NEAR(thr.back(), 0.25, 0.01);
}

TEST(LsqModel, MonotoneInQueueSize)
{
    RegionSpec spec{programIdByCode("S1"), 0, 4, 2};
    RegionAnalysis analysis(spec, 1);
    const auto &dside = analysis.dside(MemoryConfig{});
    double prev_mean = 0.0;
    for (int lq : {1, 4, 16, 64, 256}) {
        const auto thr =
            runLoadQueueModel(analysis.instrs(), analysis.loadIndex(),
                              dside.execLat, lq, 400);
        double sum = 0;
        for (double t : thr)
            sum += t;
        EXPECT_GE(sum, prev_mean * 0.999) << "LQ " << lq;
        prev_mean = sum;
    }
}

TEST(SqModel, StoresSerializeAtQueueOne)
{
    std::vector<Instruction> region(800);
    for (auto &instr : region) {
        instr.type = InstrType::Store;
        instr.memAddr = 0x100000;
        instr.pc = 0x1000;
    }
    const auto thr = runStoreQueueModel(region, 1, 400);
    EXPECT_NEAR(thr.back(), 1.0 / fixedLatency(InstrType::Store), 0.01);
}

TEST(WidthModels, IssueBoundExactValues)
{
    // Eq (6): k=400, n=100, width=2 -> 8.0.
    const auto thr = issueWidthBound({100, 0, 400}, 2, 400);
    ASSERT_EQ(thr.size(), 3u);
    EXPECT_DOUBLE_EQ(thr[0], 8.0);
    EXPECT_DOUBLE_EQ(thr[1], kMaxThroughput);
    EXPECT_DOUBLE_EQ(thr[2], 2.0);
}

TEST(WidthModels, PipesBoundsExactValues)
{
    WindowCounts counts;
    counts.k = 400;
    counts.nLoad = {120};
    counts.nStore = {40};
    counts.nAlu = {240};
    counts.nFp = {0};
    counts.nLs = {160};
    counts.nIsb = {0};
    counts.nCondBr = {0};
    counts.nUncondBr = {0};
    counts.nIndirectBr = {0};
    // LSP=2, LP=1: T_max = 120/3 + 40/2 = 60; T_min = max(20, 160/3).
    const auto lower = pipesLowerBound(counts, 2, 1);
    const auto upper = pipesUpperBound(counts, 2, 1);
    EXPECT_NEAR(lower[0], 400.0 / 60.0, 1e-9);
    EXPECT_NEAR(upper[0], 400.0 / (160.0 / 3.0), 1e-9);
}

class PipesProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(PipesProperty, LowerNeverExceedsUpper)
{
    const auto [lsp, lp] = GetParam();
    RegionSpec spec{programIdByCode("S7"), 0, 0, 2};
    const auto region = generateRegion(spec);
    const auto counts = WindowCounts::build(region, 400);
    const auto lower = pipesLowerBound(counts, lsp, lp);
    const auto upper = pipesUpperBound(counts, lsp, lp);
    for (size_t j = 0; j < lower.size(); ++j)
        EXPECT_LE(lower[j], upper[j] + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, PipesProperty,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(0, 1, 4, 8)));

TEST(PipesBounds, EqualWhenNoLoadPipes)
{
    RegionSpec spec{programIdByCode("S7"), 0, 0, 1};
    const auto region = generateRegion(spec);
    const auto counts = WindowCounts::build(region, 400);
    const auto lower = pipesLowerBound(counts, 3, 0);
    const auto upper = pipesUpperBound(counts, 3, 0);
    for (size_t j = 0; j < lower.size(); ++j)
        EXPECT_NEAR(lower[j], upper[j], 1e-9);
}

TEST(FrontendModels, FillsMonotoneInSlots)
{
    RegionSpec spec{programIdByCode("S3"), 0, 2, 2};
    RegionAnalysis analysis(spec, 0);
    const auto &iside = analysis.iside(MemoryConfig{});
    double prev = 0.0;
    for (int fills : {1, 2, 4, 8, 16, 32}) {
        const auto thr =
            runIcacheFillsModel(analysis.instrs(), iside, fills, 400);
        double sum = 0;
        for (double t : thr)
            sum += t;
        EXPECT_GE(sum, prev * 0.999) << fills << " fills";
        prev = sum;
    }
}

TEST(FrontendModels, BuffersMonotone)
{
    RegionSpec spec{programIdByCode("C2"), 0, 2, 2};
    RegionAnalysis analysis(spec, 0);
    const auto &iside = analysis.iside(MemoryConfig{});
    double prev = 0.0;
    for (int bufs : {1, 2, 4, 8}) {
        const auto thr =
            runFetchBufferModel(analysis.instrs(), iside, bufs, 400);
        double sum = 0;
        for (double t : thr)
            sum += t;
        EXPECT_GE(sum, prev * 0.999) << bufs << " buffers";
        prev = sum;
    }
}

TEST(FrontendModels, AllHitsAreUnbounded)
{
    // Tiny code footprint: after the first window, fills never bind.
    RegionSpec spec{programIdByCode("O1"), 0, 2, 1};
    RegionAnalysis analysis(spec, 1);
    const auto &iside = analysis.iside(MemoryConfig{});
    const auto thr =
        runIcacheFillsModel(analysis.instrs(), iside, 4, 400);
    EXPECT_DOUBLE_EQ(thr.back(), kMaxThroughput);
}

TEST(FeatureLayout, DimsAddUp)
{
    FeatureConfig config;
    FeatureLayout layout(config);
    size_t total = 0;
    for (const auto &[name, width] : layout.blocks())
        total += width;
    EXPECT_EQ(total, layout.dim());
    // 11 primary + 1 rate + (4 dists + sweep) + 13 latency + params.
    const size_t enc = layout.encDim();
    EXPECT_EQ(layout.dim(),
              11 * enc + 1 + 4 * enc + config.robSweep.size() + 13 * enc
                  + kParamEncodingDim);
}

TEST(FeatureLayout, GroupsAreDisjointAndOrdered)
{
    FeatureLayout layout(FeatureConfig{});
    size_t prev_end = 0;
    for (int g = 0; g < static_cast<int>(FeatureGroup::NumGroups); ++g) {
        const auto range = layout.group(static_cast<FeatureGroup>(g));
        EXPECT_EQ(range.begin, prev_end);
        EXPECT_GT(range.end, range.begin);
        prev_end = range.end;
    }
    EXPECT_EQ(prev_end, layout.dim());
}

TEST(FeatureLayout, MaskSelectsGroups)
{
    FeatureLayout layout(FeatureConfig{});
    const auto mask = layout.maskFor({FeatureGroup::Params});
    const auto range = layout.group(FeatureGroup::Params);
    for (size_t i = 0; i < mask.size(); ++i)
        EXPECT_EQ(mask[i], i >= range.begin && i < range.end ? 1 : 0);
}

TEST(FeatureProvider, AssembleMatchesLayoutDim)
{
    RegionSpec spec{programIdByCode("P9"), 0, 8, 2};
    FeatureProvider provider(spec);
    std::vector<float> out;
    provider.assemble(UarchParams::armN1(), out);
    EXPECT_EQ(out.size(), provider.layout().dim());
}

TEST(FeatureProvider, AssembleIsDeterministic)
{
    RegionSpec spec{programIdByCode("P2"), 1, 12, 2};
    Rng rng(9);
    const UarchParams params = UarchParams::sampleRandom(rng);
    std::vector<float> a, b;
    {
        FeatureProvider provider(spec);
        provider.assemble(params, a);
    }
    {
        FeatureProvider provider(spec);
        provider.assemble(params, b);
    }
    EXPECT_EQ(a, b);
}

TEST(FeatureProvider, MemoizationAvoidsRecomputation)
{
    RegionSpec spec{programIdByCode("S9"), 0, 0, 2};
    FeatureProvider provider(spec);
    std::vector<float> out;
    provider.assemble(UarchParams::armN1(), out);
    const size_t runs = provider.modelRuns();
    out.clear();
    provider.assemble(UarchParams::armN1(), out);
    EXPECT_EQ(provider.modelRuns(), runs)
        << "repeat assembly must be free of model runs";
    // A different ROB size adds exactly one ROB-model run.
    UarchParams other = UarchParams::armN1();
    other.robSize = 200;
    out.clear();
    provider.assemble(other, out);
    EXPECT_EQ(provider.modelRuns(), runs + 1);
}

TEST(FeatureProvider, MinBoundBelowComponentBounds)
{
    RegionSpec spec{programIdByCode("S6"), 0, 2, 2};
    FeatureProvider provider(spec);
    const UarchParams n1 = UarchParams::armN1();
    const auto &rob = provider.robWindows(n1.robSize, n1.memory);
    std::vector<float> out;
    provider.assemble(n1, out);     // forces min-bound computation
    const double cpi = provider.cpiMinBound(n1);
    // CPI from the min bound can never beat the ROB bound alone.
    double rob_cpi = 0;
    for (double t : rob)
        rob_cpi += 1.0 / std::max(t, 1e-6);
    rob_cpi /= static_cast<double>(rob.size());
    EXPECT_GE(cpi, rob_cpi - 1e-9);
}

class RandomDesignFeatures : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomDesignFeatures, AssembledVectorsAreFinite)
{
    Rng rng(1000 + GetParam());
    const RegionSpec spec = sampleRegion(rng, 2);
    FeatureProvider provider(spec);
    for (int trial = 0; trial < 3; ++trial) {
        const UarchParams params = UarchParams::sampleRandom(rng);
        std::vector<float> out;
        provider.assemble(params, out);
        ASSERT_EQ(out.size(), provider.layout().dim());
        for (float v : out) {
            ASSERT_TRUE(std::isfinite(v));
            ASSERT_GE(v, -1e6f);
            ASSERT_LE(v, 1e6f);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDesignFeatures,
                         ::testing::Range(0, 6));

TEST(FeatureProvider, ThroughputFeaturesRespectCaps)
{
    RegionSpec spec{programIdByCode("O1"), 0, 0, 2};
    FeatureProvider provider(spec);
    std::vector<float> out;
    provider.assemble(UarchParams::bigCore(), out);
    const auto range = provider.layout().group(FeatureGroup::Primary);
    for (size_t i = range.begin; i < range.end; ++i) {
        EXPECT_GE(out[i], 0.0f);
        EXPECT_LE(out[i], static_cast<float>(kMaxThroughput) + 1e-3f);
    }
}

TEST(FeatureProvider, MispredictRateFeatureTracksPredictor)
{
    RegionSpec spec{programIdByCode("S4"), 0, 2, 2};
    FeatureProvider provider(spec);
    const auto range = provider.layout().group(FeatureGroup::MispredRate);

    UarchParams simple = UarchParams::armN1();
    simple.branch.type = BranchConfig::Type::Simple;
    simple.branch.simpleMispredictPct = 40;
    std::vector<float> out;
    provider.assemble(simple, out);
    EXPECT_NEAR(out[range.begin], 0.40f, 0.05f);

    out.clear();
    provider.assemble(UarchParams::armN1(), out);    // TAGE
    EXPECT_LT(out[range.begin], 0.25f);
}

TEST(FeatureProvider, LargerRobSweepValuesAreMonotone)
{
    RegionSpec spec{programIdByCode("P5"), 0, 4, 2};
    FeatureConfig config;
    FeatureProvider provider(spec, config);
    std::vector<float> out;
    provider.assemble(UarchParams::armN1(), out);
    // The ROB-sweep block sits at the end of the Stalls group.
    const auto range = provider.layout().group(FeatureGroup::Stalls);
    const size_t sweep_begin = range.end - config.robSweep.size();
    for (size_t i = sweep_begin + 1; i < range.end; ++i)
        EXPECT_GE(out[i], out[i - 1] - 1e-4f);
}

TEST(FeatureProvider, PrecomputeQuantizedSweep)
{
    RegionSpec spec{programIdByCode("O1"), 0, 0, 1};
    FeatureProvider provider(spec);
    const size_t runs = provider.precomputeAll(true);
    // 40 d-configs x (11 ROB + 9 LQ) + 9 SQ + 20 i-configs x (6 + 8).
    EXPECT_EQ(runs, 40u * (11 + 9) + 9 + 20u * (6 + 8));
    // After the sweep, a random design point costs no further model runs.
    Rng rng(4);
    UarchParams params = UarchParams::sampleRandom(rng);
    params.robSize = 256;       // on the quantized grid
    params.lqSize = 64;
    params.sqSize = 16;
    params.maxIcacheFills = 8;
    const size_t before = provider.modelRuns();
    std::vector<float> out;
    provider.assemble(params, out);
    EXPECT_EQ(provider.modelRuns(), before);
}

} // anonymous namespace
} // namespace concorde
