/**
 * @file
 * Tests for the shared AnalysisStore and its consumers: cached-vs-fresh
 * bitwise neutrality, the LRU residency bound, per-key once-init under
 * concurrency, and the dataset-generation regression (grouped,
 * store-backed labeling produces byte-identical shards).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <thread>

#include "analysis/analysis_store.hh"
#include "core/artifacts.hh"
#include "core/dataset.hh"
#include "pipeline/analysis_pipeline.hh"
#include "sim/o3_core.hh"
#include "trace/workloads.hh"

namespace concorde
{
namespace
{

RegionSpec
regionAt(uint64_t start_chunk, uint32_t num_chunks = 2, int program = 0)
{
    RegionSpec spec;
    spec.programId = program;
    spec.traceId = 0;
    spec.startChunk = start_chunk;
    spec.numChunks = num_chunks;
    return spec;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::string
freshDir(const std::string &name)
{
    const std::string dir = "/tmp/concorde_store_" + name;
    const std::string cmd = "rm -rf '" + dir + "'";
    EXPECT_EQ(std::system(cmd.c_str()), 0);
    return dir;
}

TEST(AnalysisStore, CachedVsFreshBitwiseFeaturesAndLabels)
{
    AnalysisStore store;
    const RegionSpec region = regionAt(16);
    const FeatureConfig cfg;

    Rng rng(99);
    FeatureProvider cached(store.acquire(region), cfg);
    for (int i = 0; i < 4; ++i) {
        const UarchParams params = UarchParams::sampleRandom(rng);

        // A fresh per-sample provider: the pre-store labeling path.
        FeatureProvider fresh(region, cfg);
        std::vector<float> fresh_row, cached_row;
        fresh.assemble(params, fresh_row);
        cached.assemble(params, cached_row);
        ASSERT_EQ(fresh_row.size(), cached_row.size());
        for (size_t j = 0; j < fresh_row.size(); ++j)
            ASSERT_EQ(fresh_row[j], cached_row[j]) << "feature " << j;

        const SimResult sim_fresh = simulateRegion(params, fresh.analysis());
        const SimResult sim_cached =
            simulateRegion(params, cached.analysis());
        EXPECT_EQ(sim_fresh.cycles, sim_cached.cycles);
        EXPECT_EQ(sim_fresh.branchMispredicts, sim_cached.branchMispredicts);
        EXPECT_EQ(sim_fresh.actualLoadLatencySum,
                  sim_cached.actualLoadLatencySum);
    }
}

TEST(AnalysisStore, AcquireSharesOneSnapshot)
{
    AnalysisStore store;
    const RegionSpec region = regionAt(24);

    const auto first = store.acquire(region);
    const auto second = store.acquire(region);
    EXPECT_EQ(first.get(), second.get());

    const AnalysisStoreStats stats = store.stats();
    EXPECT_EQ(stats.built, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.entries, 1u);
    // Weight = region + warmup instructions.
    EXPECT_EQ(stats.residentInstructions,
              first->instrs().size() + first->warmupInstrs().size());

    // A different warmup convention is a different key.
    const auto other = store.acquire(region, 0);
    EXPECT_NE(other.get(), first.get());
    EXPECT_TRUE(other->warmupInstrs().empty());
}

TEST(AnalysisStore, LruEvictionRespectsInstructionBound)
{
    // Each (2-chunk region + 8-chunk warmup) entry weighs 10 * kChunkLen
    // instructions; bound the store to just over two entries.
    const uint64_t entry_weight = 10 * kChunkLen;
    AnalysisStore store(2 * entry_weight + 1);

    const auto a = store.acquire(regionAt(16));
    const auto b = store.acquire(regionAt(32));
    EXPECT_EQ(store.stats().evictions, 0u);
    EXPECT_EQ(store.stats().entries, 2u);

    // Third entry exceeds the bound: the LRU one (a) must go.
    const auto c = store.acquire(regionAt(48));
    AnalysisStoreStats stats = store.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_LE(stats.residentInstructions, stats.maxResidentInstructions);

    // b and c still hit; a was evicted and is rebuilt (the old snapshot
    // we hold stays valid but is no longer the store's).
    EXPECT_EQ(store.acquire(regionAt(32)).get(), b.get());
    EXPECT_EQ(store.acquire(regionAt(48)).get(), c.get());
    const auto a2 = store.acquire(regionAt(16));
    EXPECT_NE(a2.get(), a.get());
    EXPECT_EQ(store.stats().built, 4u);

    // The evicted snapshot still answers (live references survive).
    EXPECT_EQ(a->instrs().size(), a2->instrs().size());

    store.clear();
    EXPECT_EQ(store.stats().entries, 0u);
    EXPECT_EQ(store.stats().residentInstructions, 0u);
}

TEST(AnalysisStore, ConcurrentSameKeyHammerAnalyzesOnce)
{
    AnalysisStore store;
    const RegionSpec region = regionAt(40);

    constexpr int kThreads = 8;
    std::atomic<int> ready{0};
    std::vector<std::shared_ptr<RegionAnalysis>> got(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            // Crude barrier so the acquires overlap.
            ++ready;
            while (ready.load() < kThreads)
                std::this_thread::yield();
            got[t] = store.acquire(region);
            // Exercise the shared analysis from every thread too: the
            // memo tables are internally locked.
            const UarchParams params = UarchParams::armN1();
            (void)got[t]->dside(params.memory);
            (void)got[t]->branches(params.branch);
        });
    }
    for (auto &thread : threads)
        thread.join();

    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(got[t].get(), got[0].get());
    const AnalysisStoreStats stats = store.stats();
    EXPECT_EQ(stats.built, 1u);
    EXPECT_EQ(stats.hits + stats.misses, static_cast<uint64_t>(kThreads));
    EXPECT_EQ(got[0]->numDsideAnalyses(), 1u);
    EXPECT_EQ(got[0]->numBranchAnalyses(), 1u);
}

/**
 * The PR-4 regression: grouped, store-backed labeling must leave shard
 * bytes and the manifest exactly as the per-sample path wrote them.
 * Every stored sample is re-derived with a fresh single-sample provider
 * (the pre-store semantics) and compared field by field; two builds of
 * the same config must also be byte-identical to each other.
 */
TEST(AnalysisStore, DatasetShardBytesAndManifestUnchanged)
{
    DatasetConfig config;
    config.numSamples = 12;
    config.regionChunks = 2;
    config.seed = 4242;

    const std::string dir_a = freshDir("shards_a");
    const std::string dir_b = freshDir("shards_b");
    const auto built_a = buildDatasetShards(config, dir_a, 5);
    const auto built_b = buildDatasetShards(config, dir_b, 5);
    ASSERT_TRUE(built_a.complete());
    ASSERT_TRUE(built_b.complete());

    EXPECT_EQ(datasetManifestHash(dir_a), datasetManifestHash(dir_b));
    for (size_t shard = 0; shard < 3; ++shard) {
        EXPECT_EQ(fileBytes(DatasetManifest::shardFile(dir_a, shard)),
                  fileBytes(DatasetManifest::shardFile(dir_b, shard)))
            << "shard " << shard;
    }

    const Dataset data = loadDatasetShards(dir_a);
    ASSERT_EQ(data.size(), config.numSamples);
    for (size_t s = 0; s < data.size(); ++s) {
        const SampleMeta &meta = data.meta[s];

        FeatureProvider fresh(meta.region, config.features);
        std::vector<float> row;
        fresh.assemble(meta.params, row);
        ASSERT_EQ(row.size(), data.dim);
        for (size_t j = 0; j < row.size(); ++j)
            ASSERT_EQ(row[j], data.row(s)[j])
                << "sample " << s << " feature " << j;

        const SimResult sim = simulateRegion(meta.params, fresh.analysis());
        EXPECT_EQ(meta.cpi, static_cast<float>(sim.cpi()));
        EXPECT_EQ(meta.avgRobOcc,
                  static_cast<float>(sim.avgRobOccupancy));
        EXPECT_EQ(meta.avgRenameOcc,
                  static_cast<float>(sim.avgRenameQOccupancy));
        EXPECT_EQ(meta.mispredicts,
                  static_cast<uint32_t>(sim.branchMispredicts));
        EXPECT_EQ(data.labels[s], meta.cpi);
    }
}

TEST(AnalysisStore, PipelineWithStoreBitwiseIdenticalAndWarm)
{
    AnalysisStore store;
    const TrainedModel model =
        artifacts::untrainedModel(FeatureConfig{}, 2029);
    const ConcordePredictor predictor(model, FeatureConfig{});

    TraceSpan span;
    span.programId = programIdByCode("S7");
    span.traceId = 0;
    span.startChunk = 16;
    span.numChunks = 8;

    pipeline::PipelineConfig cold_cfg;
    cold_cfg.regionChunks = 2;
    pipeline::PipelineConfig store_cfg = cold_cfg;
    store_cfg.analysisStore = &store;

    const UarchParams params = UarchParams::armN1();
    pipeline::AnalysisPipeline cold(predictor, cold_cfg);
    pipeline::AnalysisPipeline shared(predictor, store_cfg);
    const auto ref = cold.run(span, params);
    const auto first = shared.run(span, params);
    const auto second = shared.run(span, params);

    ASSERT_EQ(ref.regionCpi.size(), first.regionCpi.size());
    for (size_t i = 0; i < ref.regionCpi.size(); ++i) {
        EXPECT_EQ(ref.regionCpi[i], first.regionCpi[i]);
        EXPECT_EQ(ref.regionCpi[i], second.regionCpi[i]);
    }

    const AnalysisStoreStats stats = store.stats();
    EXPECT_EQ(stats.built, ref.regions.size());
    EXPECT_EQ(stats.hits, ref.regions.size());
}

TEST(AnalysisStore, PredictSweepMatchesPerConfigLoop)
{
    AnalysisStore store;
    const ConcordePredictor predictor(
        artifacts::untrainedModel(FeatureConfig{}, 2030), FeatureConfig{});
    const RegionSpec region = regionAt(16, 2, programIdByCode("S3"));

    Rng rng(7);
    std::vector<UarchParams> points;
    for (int i = 0; i < 6; ++i)
        points.push_back(UarchParams::sampleRandom(rng));

    const auto swept =
        predictor.predictSweep(region, points, /*threads=*/1, &store);
    ASSERT_EQ(swept.size(), points.size());
    for (size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(swept[i], predictor.predictCpi(region, points[i]))
            << "point " << i;
    }
    EXPECT_EQ(store.stats().built, 1u);
}

} // anonymous namespace
} // namespace concorde
