/**
 * @file
 * End-to-end integration tests: features -> ground truth -> training ->
 * prediction, plus cross-model consistency properties (analytical bound vs
 * simulator, trained model vs pure-analytical baseline, Shapley on the
 * real predictor).
 */

#include <gtest/gtest.h>

#include "core/concorde.hh"
#include "core/dataset.hh"
#include "core/shapley.hh"
#include "sim/o3_core.hh"

namespace concorde
{
namespace
{

TEST(Integration, MinBoundIsOptimisticForMostRegions)
{
    // The per-window minimum of resource bounds overestimates IPC (i.e.
    // underestimates CPI) in the vast majority of cases -- it ignores
    // bottleneck interactions (Section 2).
    Rng rng(21);
    int optimistic = 0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
        const RegionSpec spec = sampleRegion(rng, 2);
        const UarchParams params = UarchParams::sampleRandom(rng);
        FeatureProvider provider(spec);
        const double bound_cpi = provider.cpiMinBound(params);
        const double true_cpi =
            simulateRegion(params, provider.analysis()).cpi();
        optimistic += bound_cpi <= true_cpi * 1.05;
    }
    EXPECT_GE(optimistic, trials - 2);
}

TEST(Integration, TrainedModelBeatsAnalyticalMinBound)
{
    DatasetConfig config;
    config.numSamples = 620;
    config.regionChunks = 2;
    config.seed = 77;
    const Dataset data = buildDataset(config);

    // Split 520 train / 100 test.
    std::vector<size_t> train_idx, test_idx;
    for (size_t i = 0; i < data.size(); ++i)
        (i < 520 ? train_idx : test_idx).push_back(i);
    const Dataset train = data.subset(train_idx);
    const Dataset test = data.subset(test_idx);

    TrainConfig tc;
    tc.epochs = 40;
    TrainedModel model =
        trainMlp(train.features, train.labels, train.dim, tc);

    double ml_err = 0.0, bound_err = 0.0;
    for (size_t i = 0; i < test.size(); ++i) {
        const float pred = model.predict(test.row(i));
        ml_err += std::abs(pred - test.labels[i]) / test.labels[i];
        FeatureProvider provider(test.meta[i].region);
        const double bound = provider.cpiMinBound(test.meta[i].params);
        bound_err +=
            std::abs(bound - test.labels[i]) / test.labels[i];
    }
    ml_err /= test.size();
    bound_err /= test.size();
    EXPECT_LT(ml_err, bound_err)
        << "ML fusion must beat the raw analytical bound";
    EXPECT_LT(ml_err, 0.35);
}

TEST(Integration, ShapleyOnRealPredictorSatisfiesEfficiency)
{
    DatasetConfig config;
    config.numSamples = 120;
    config.regionChunks = 2;
    config.seed = 88;
    const Dataset data = buildDataset(config);
    TrainConfig tc;
    tc.epochs = 8;
    TrainedModel model =
        trainMlp(data.features, data.labels, data.dim, tc);
    ConcordePredictor predictor(std::move(model), FeatureConfig{});

    const RegionSpec spec = data.meta[0].region;
    FeatureProvider provider(spec, FeatureConfig{});
    auto eval = [&](const UarchParams &p) {
        return predictor.predictCpi(provider, p);
    };

    const UarchParams base = UarchParams::bigCore();
    const UarchParams target = UarchParams::armN1();
    ShapleyConfig sc;
    sc.numPermutations = 6;
    const auto phi = shapleyAttribution(base, target,
                                        attributionComponents(), eval, sc);
    double sum = 0.0;
    for (double v : phi)
        sum += v;
    EXPECT_NEAR(sum, eval(target) - eval(base), 1e-6);
}

TEST(Integration, PredictionRespondsToParameters)
{
    // A trained model must prefer the big core to a tiny core on a
    // compute-bound region (directional sanity of the fused model).
    DatasetConfig config;
    config.numSamples = 300;
    config.regionChunks = 2;
    config.seed = 99;
    const Dataset data = buildDataset(config);
    TrainConfig tc;
    tc.epochs = 25;
    TrainedModel model =
        trainMlp(data.features, data.labels, data.dim, tc);
    ConcordePredictor predictor(std::move(model), FeatureConfig{});

    RegionSpec spec{programIdByCode("O2"), 0, 4, 2};
    FeatureProvider provider(spec, FeatureConfig{});
    UarchParams tiny = UarchParams::armN1();
    tiny.robSize = 8;
    tiny.aluWidth = 1;
    tiny.fetchWidth = 1;
    tiny.decodeWidth = 1;
    tiny.renameWidth = 1;
    tiny.commitWidth = 1;
    const double big_cpi =
        predictor.predictCpi(provider, UarchParams::bigCore());
    const double tiny_cpi = predictor.predictCpi(provider, tiny);
    EXPECT_LT(big_cpi, tiny_cpi);
}

TEST(Integration, ExecRatioCorrelatesWithMemoryIntensity)
{
    // The Figure-11 diagnostic: timing-dependent memory behavior makes
    // actual load latencies deviate from trace-analysis estimates; the
    // ratio must be finite and positive everywhere.
    DatasetConfig config;
    config.numSamples = 24;
    config.regionChunks = 2;
    config.seed = 111;
    const Dataset data = buildDataset(config);
    for (const auto &meta : data.meta) {
        EXPECT_GT(meta.execRatio, 0.05f);
        EXPECT_LT(meta.execRatio, 50.0f);
    }
}

} // anonymous namespace
} // namespace concorde
