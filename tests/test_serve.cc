/**
 * @file
 * Tests for the prediction-service layer: LRU PredictionCache
 * accounting and eviction, ModelRegistry identity rules, BatchingQueue
 * flush/admission/timeout behavior against a mock handler, and the
 * composed PredictionService matching the scalar predictCpi path
 * through both the typed API and the legacy shims.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/stopwatch.hh"
#include "core/concorde.hh"
#include "ml/mlp.hh"
#include "serve/prediction_service.hh"

namespace concorde
{
namespace
{

using namespace concorde::serve;

/** One flush policy for both request classes. */
BatchingConfig
uniformBatching(size_t max_batch, std::chrono::microseconds max_age)
{
    BatchingConfig cfg;
    for (auto &policy : cfg.classes)
        policy = {max_batch, max_age};
    return cfg;
}

// ---- PredictionCache ----

TEST(PredictionCache, HitMissAccounting)
{
    PredictionCache cache(4);
    double value = 0.0;
    EXPECT_FALSE(cache.lookup(1, value));
    cache.insert(1, 2.5);
    EXPECT_TRUE(cache.lookup(1, value));
    EXPECT_EQ(value, 2.5);
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_DOUBLE_EQ(stats.hitRate(), 0.5);
}

TEST(PredictionCache, EvictsLeastRecentlyUsed)
{
    PredictionCache cache(2);
    cache.insert(1, 1.0);
    cache.insert(2, 2.0);
    double value = 0.0;
    // Touch key 1 so key 2 becomes the LRU victim.
    EXPECT_TRUE(cache.lookup(1, value));
    cache.insert(3, 3.0);
    EXPECT_TRUE(cache.lookup(1, value));
    EXPECT_FALSE(cache.lookup(2, value));
    EXPECT_TRUE(cache.lookup(3, value));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(PredictionCache, InsertRefreshesExistingKey)
{
    PredictionCache cache(2);
    cache.insert(1, 1.0);
    cache.insert(2, 2.0);
    cache.insert(1, 1.5);    // refresh, not a new entry
    cache.insert(3, 3.0);    // evicts 2, not 1
    double value = 0.0;
    EXPECT_TRUE(cache.lookup(1, value));
    EXPECT_EQ(value, 1.5);
    EXPECT_FALSE(cache.lookup(2, value));
}

TEST(PredictionCache, ZeroCapacityDisablesCaching)
{
    PredictionCache cache(0);
    cache.insert(1, 1.0);
    double value = 0.0;
    EXPECT_FALSE(cache.lookup(1, value));
    EXPECT_EQ(cache.stats().entries, 0u);
}

// ---- ModelRegistry ----

/** Tiny untrained predictor over a shrunken feature space. */
ConcordePredictor
tinyPredictor(uint64_t seed)
{
    FeatureConfig cfg;
    cfg.numPercentiles = 5;
    cfg.robSweep = {4, 64};
    cfg.latencyRobSizes = {4, 64};
    const FeatureLayout layout(cfg);
    Mlp net({layout.dim(), 16, 1}, seed);
    std::vector<float> mean(layout.dim(), 0.0f);
    std::vector<float> stdev(layout.dim(), 1.0f);
    TrainedModel model(std::move(net), std::move(mean), std::move(stdev),
                       {});
    return ConcordePredictor(std::move(model), cfg);
}

TEST(ModelRegistry, AddGetRemove)
{
    ModelRegistry registry;
    EXPECT_FALSE(registry.get("m").valid());
    registry.add("m", tinyPredictor(1));
    registry.add("other", tinyPredictor(2));
    EXPECT_TRUE(registry.get("m").valid());
    EXPECT_EQ(registry.size(), 2u);
    EXPECT_EQ(registry.names(),
              (std::vector<std::string>{"m", "other"}));
    EXPECT_TRUE(registry.remove("m"));
    EXPECT_FALSE(registry.remove("m"));
    EXPECT_FALSE(registry.get("m").valid());
}

TEST(ModelRegistry, ReplacementBumpsIdAndKeepsOldAlive)
{
    ModelRegistry registry;
    const ModelHandle first = registry.add("m", tinyPredictor(3));
    const ModelHandle second = registry.add("m", tinyPredictor(4));
    EXPECT_NE(first.id, second.id);
    // The first handle's predictor survives replacement (shared_ptr).
    EXPECT_TRUE(first.predictor != nullptr);
    EXPECT_NE(first.predictor.get(), second.predictor.get());
    // Cache keys must differ across registrations of the same name.
    const RegionSpec region{0, 0, 0, 1};
    const UarchParams n1 = UarchParams::armN1();
    EXPECT_NE(predictionKey(first.id, region, n1),
              predictionKey(second.id, region, n1));
}

// ---- BatchingQueue (mock handler) ----

/** Handler that answers each request with its ROB size. */
BatchingQueue::BatchFn
robSizeHandler(std::atomic<int> *batches = nullptr)
{
    return [batches](const std::vector<PredictionRequest> &batch) {
        if (batches)
            ++*batches;
        std::vector<PredictResponse> out(batch.size());
        for (size_t i = 0; i < batch.size(); ++i)
            out[i].cpi = static_cast<double>(batch[i].params.robSize);
        return out;
    };
}

PredictionRequest
requestWithRob(int rob)
{
    PredictionRequest request;
    request.params.robSize = rob;
    request.key = request.params.hashKey();
    return request;
}

TEST(BatchingQueue, FlushOnDeadlineWithSingleRequest)
{
    // maxBatch never reached: the flush must come from the age trigger.
    BatchingQueue queue(
        uniformBatching(100, std::chrono::microseconds(2000)),
        robSizeHandler());
    auto future = queue.submit(requestWithRob(42));
    const PredictResponse response = future.get();
    EXPECT_EQ(response.status, ServeStatus::OK);
    EXPECT_EQ(response.cpi, 42.0);
    const QueueStats stats = queue.stats();
    EXPECT_EQ(stats.submitted, 1u);
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(stats.flushOnDeadline, 1u);
    ASSERT_GT(stats.batchSizeCounts.size(), 1u);
    EXPECT_EQ(stats.batchSizeCounts[1], 1u);
}

TEST(BatchingQueue, FlushOnMaxBatchBeforeDeadline)
{
    // 30s age: completion within the test proves the size trigger.
    BatchingQueue queue(uniformBatching(8, std::chrono::seconds(30)),
                        robSizeHandler());
    std::vector<std::future<PredictResponse>> futures;
    Stopwatch t;
    for (int i = 0; i < 8; ++i)
        futures.push_back(queue.submit(requestWithRob(i + 1)));
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(futures[i].get().cpi, i + 1.0);
    EXPECT_LT(t.seconds(), 10.0);
    EXPECT_GE(queue.stats().flushOnSize, 1u);
}

TEST(BatchingQueue, PerClassPoliciesFlushIndependently)
{
    BatchingConfig cfg;
    cfg.policy(RequestClass::Interactive) = {
        100, std::chrono::microseconds(500)};
    cfg.policy(RequestClass::Bulk) = {100, std::chrono::seconds(30)};
    BatchingQueue queue(cfg, robSizeHandler());

    PredictionRequest bulk = requestWithRob(7);
    bulk.cls = RequestClass::Bulk;
    auto bulkFuture = queue.submit(std::move(bulk));

    PredictionRequest interactive = requestWithRob(3);
    interactive.cls = RequestClass::Interactive;
    auto interactiveFuture = queue.submit(std::move(interactive));

    // The interactive request flushes on its short age while the bulk
    // request keeps waiting on its 30s policy.
    EXPECT_EQ(interactiveFuture.get().cpi, 3.0);
    EXPECT_EQ(bulkFuture.wait_for(std::chrono::milliseconds(0)),
              std::future_status::timeout);
    queue.shutdown();   // flushes the bulk class
    EXPECT_EQ(bulkFuture.get().cpi, 7.0);
    const QueueStats stats = queue.stats();
    EXPECT_GE(stats.flushOnDeadline, 1u);
    EXPECT_GE(stats.flushOnShutdown, 1u);
    EXPECT_EQ(stats.submittedByClass[static_cast<size_t>(
                  RequestClass::Interactive)], 1u);
    EXPECT_EQ(stats.submittedByClass[static_cast<size_t>(
                  RequestClass::Bulk)], 1u);
}

TEST(BatchingQueue, TimeoutExpiresQueuedRequest)
{
    // Age far beyond the per-request timeout: the request must expire,
    // not be served.
    BatchingQueue queue(uniformBatching(100, std::chrono::seconds(30)),
                        robSizeHandler());
    PredictionRequest request = requestWithRob(5);
    request.timeout = std::chrono::milliseconds(2);
    Stopwatch t;
    const PredictResponse response = queue.submit(std::move(request)).get();
    EXPECT_EQ(response.status, ServeStatus::TIMEOUT);
    EXPECT_LT(t.seconds(), 10.0);
    EXPECT_EQ(queue.stats().timeouts, 1u);
    EXPECT_EQ(queue.stats().batches, 0u);
}

TEST(BatchingQueue, AdmissionControlRejectsExcessInFlight)
{
    BatchingConfig cfg = uniformBatching(100, std::chrono::seconds(30));
    cfg.maxInFlightPerKey = 2;
    BatchingQueue queue(cfg, robSizeHandler());
    // All requests share admission key 0 (default model id). The first
    // two park in the queue (30s age); the third must bounce.
    auto a = queue.submit(requestWithRob(1));
    auto b = queue.submit(requestWithRob(2));
    const PredictResponse rejected = queue.submit(requestWithRob(3)).get();
    EXPECT_EQ(rejected.status, ServeStatus::OVERLOADED);
    EXPECT_EQ(queue.stats().rejectedOverload, 1u);
    queue.shutdown();
    // The admitted requests complete, freeing their admission slots.
    EXPECT_EQ(a.get().cpi, 1.0);
    EXPECT_EQ(b.get().cpi, 2.0);
    EXPECT_TRUE(queue.idle());
}

TEST(BatchingQueue, ConcurrentSubmittersExceedPoolSize)
{
    ThreadPool pool(1);
    std::atomic<int> batches{0};
    BatchingQueue queue(
        uniformBatching(16, std::chrono::microseconds(200)),
        robSizeHandler(&batches), &pool);
    constexpr int kSubmitters = 6;      // > pool size of 1
    constexpr int kPerThread = 80;
    std::vector<std::thread> submitters;
    std::atomic<int> failures{0};
    for (int t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&, t]() {
            std::vector<std::future<PredictResponse>> futures;
            std::vector<int> expect;
            for (int i = 0; i < kPerThread; ++i) {
                const int rob = 1 + t * kPerThread + i;
                expect.push_back(rob);
                futures.push_back(queue.submit(requestWithRob(rob)));
            }
            for (int i = 0; i < kPerThread; ++i) {
                if (futures[i].get().cpi != expect[i])
                    ++failures;
            }
        });
    }
    for (auto &t : submitters)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    const QueueStats stats = queue.stats();
    EXPECT_EQ(stats.submitted,
              static_cast<uint64_t>(kSubmitters * kPerThread));
    EXPECT_GE(batches.load(), 1);
    // Every submitted request was dispatched in exactly one batch.
    uint64_t dispatched = 0;
    for (size_t s = 0; s < stats.batchSizeCounts.size(); ++s)
        dispatched += s * stats.batchSizeCounts[s];
    EXPECT_EQ(dispatched, stats.submitted);
}

TEST(BatchingQueue, CallbackCompletionForm)
{
    BatchingQueue queue(
        uniformBatching(4, std::chrono::microseconds(100)),
        robSizeHandler());
    std::promise<PredictResponse> done;
    queue.submit(requestWithRob(11), [&done](PredictResponse response) {
        done.set_value(std::move(response));
    });
    const PredictResponse response = done.get_future().get();
    EXPECT_EQ(response.status, ServeStatus::OK);
    EXPECT_EQ(response.cpi, 11.0);
}

TEST(BatchingQueue, HandlerExceptionBecomesInternalError)
{
    BatchingQueue queue(
        uniformBatching(4, std::chrono::microseconds(100)),
        [](const std::vector<PredictionRequest> &)
            -> std::vector<PredictResponse> {
            throw std::runtime_error("model exploded");
        });
    std::vector<std::future<PredictResponse>> futures;
    for (int i = 0; i < 4; ++i)
        futures.push_back(queue.submit(requestWithRob(i + 1)));
    for (auto &f : futures) {
        const PredictResponse response = f.get();
        EXPECT_EQ(response.status, ServeStatus::INTERNAL_ERROR);
        EXPECT_EQ(response.message, "model exploded");
    }
    // The queue survives a failing batch.
    EXPECT_EQ(queue.stats().batches, 1u);
}

TEST(BatchingQueue, WrongResultCountIsAnError)
{
    BatchingQueue queue(
        uniformBatching(2, std::chrono::microseconds(100)),
        [](const std::vector<PredictionRequest> &) {
            return std::vector<PredictResponse>(1);     // short by one
        });
    auto a = queue.submit(requestWithRob(1));
    auto b = queue.submit(requestWithRob(2));
    EXPECT_EQ(a.get().status, ServeStatus::INTERNAL_ERROR);
    EXPECT_EQ(b.get().status, ServeStatus::INTERNAL_ERROR);
}

TEST(BatchingQueue, ShutdownFlushesPendingAndRejectsNewWork)
{
    BatchingQueue queue(uniformBatching(100, std::chrono::seconds(30)),
                        robSizeHandler());
    std::vector<std::future<PredictResponse>> futures;
    for (int i = 0; i < 3; ++i)
        futures.push_back(queue.submit(requestWithRob(i + 1)));
    queue.shutdown();
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(futures[i].get().cpi, i + 1.0);
    EXPECT_GE(queue.stats().flushOnShutdown, 1u);
    const PredictResponse rejected = queue.submit(requestWithRob(9)).get();
    EXPECT_EQ(rejected.status, ServeStatus::SHUTDOWN);
    EXPECT_EQ(queue.stats().rejectedShutdown, 1u);
}

TEST(BatchingQueue, RejectsBrokenConfig)
{
    BatchingConfig cfg;
    cfg.policy(RequestClass::Interactive).maxBatch = 0;
    EXPECT_THROW(BatchingQueue(cfg, robSizeHandler()),
                 std::invalid_argument);
    cfg.policy(RequestClass::Interactive).maxBatch = 1;
    EXPECT_THROW(BatchingQueue(cfg, nullptr), std::invalid_argument);
}

// ---- PredictionService end to end ----

TEST(PredictionService, MatchesScalarPredictorAndCountsCacheTraffic)
{
    ServeConfig cfg;
    cfg.batching = uniformBatching(16, std::chrono::microseconds(200));
    cfg.cacheCapacity = 1024;
    cfg.poolThreads = 2;
    PredictionService service(cfg);
    service.registry().add("tiny", tinyPredictor(11));

    // An independent predictor with identical weights for the scalar
    // reference path.
    ConcordePredictor reference = tinyPredictor(11);
    const RegionSpec region{0, 0, 0, 1};
    FeatureProvider provider(region, reference.featureConfig());

    Rng rng(12);
    std::vector<UarchParams> points;
    for (int i = 0; i < 40; ++i)
        points.push_back(UarchParams::sampleRandom(rng));

    std::vector<std::future<double>> futures;
    for (const auto &point : points)
        futures.push_back(service.predictAsync("tiny", region, point));
    for (size_t i = 0; i < points.size(); ++i) {
        const double scalar = reference.predictCpi(provider, points[i]);
        EXPECT_NEAR(futures[i].get(), scalar,
                    1e-6 * std::max(1.0, std::abs(scalar))) << "point " << i;
    }

    const uint64_t misses_before = service.stats().cache.misses;
    EXPECT_GE(misses_before, points.size());

    // Replay: every request must now be a cache hit, with the exact
    // same double as the first pass.
    for (size_t i = 0; i < points.size(); ++i) {
        const double replay = service.predict("tiny", region, points[i]);
        const double scalar = reference.predictCpi(provider, points[i]);
        EXPECT_NEAR(replay, scalar,
                    1e-6 * std::max(1.0, std::abs(scalar)));
    }
    const ServeStats stats = service.stats();
    EXPECT_GE(stats.cache.hits, static_cast<uint64_t>(points.size()));
    EXPECT_EQ(stats.cache.misses, misses_before);
    EXPECT_EQ(stats.queue.submitted,
              static_cast<uint64_t>(2 * points.size()));
    // Every completion was recorded: latency reservoir and per-status
    // counters cover both passes.
    EXPECT_EQ(stats.latency.count,
              static_cast<uint64_t>(2 * points.size()));
    EXPECT_EQ(stats.byStatus[static_cast<size_t>(ServeStatus::OK)],
              static_cast<uint64_t>(2 * points.size()));
    EXPECT_GT(stats.latency.p99Us, 0.0);
    EXPECT_GE(stats.latency.p99Us, stats.latency.p50Us);
}

TEST(PredictionService, CacheHitIsBitwiseIdentical)
{
    ServeConfig cfg;
    cfg.batching = uniformBatching(4, std::chrono::microseconds(100));
    PredictionService service(cfg);
    service.registry().add("tiny", tinyPredictor(21));
    const RegionSpec region{1, 0, 0, 1};
    const UarchParams n1 = UarchParams::armN1();
    const double first = service.predict("tiny", region, n1);
    const double second = service.predict("tiny", region, n1);
    EXPECT_EQ(first, second);
    EXPECT_GE(service.stats().cache.hits, 1u);
}

TEST(PredictionService, UnknownModelThrowsFromLegacyShim)
{
    PredictionService service;
    const RegionSpec region{0, 0, 0, 1};
    EXPECT_THROW(service.predictAsync("missing", region,
                                      UarchParams::armN1()),
                 std::invalid_argument);
}

TEST(PredictionService, TypedApiReturnsStatusInsteadOfThrowing)
{
    PredictionService service;
    PredictRequest request;
    request.model = "missing";
    request.region = RegionSpec{0, 0, 0, 1};
    request.params = UarchParams::armN1();
    const PredictResponse response = service.predict(request);
    EXPECT_EQ(response.status, ServeStatus::UNKNOWN_MODEL);
    EXPECT_FALSE(response.ok());
    EXPECT_NE(response.message.find("missing"), std::string::npos);
    EXPECT_EQ(service.stats().byStatus[static_cast<size_t>(
                  ServeStatus::UNKNOWN_MODEL)], 1u);
}

TEST(PredictionService, TypedTimeoutSurfacesAsStatus)
{
    ServeConfig cfg;
    // Queue age far beyond the request timeout so the request expires.
    cfg.batching = uniformBatching(100, std::chrono::seconds(30));
    PredictionService service(cfg);
    service.registry().add("tiny", tinyPredictor(22));
    PredictRequest request;
    request.model = "tiny";
    request.region = RegionSpec{0, 0, 0, 1};
    request.params = UarchParams::armN1();
    request.timeout = std::chrono::milliseconds(2);
    const PredictResponse response = service.predict(request);
    EXPECT_EQ(response.status, ServeStatus::TIMEOUT);
    EXPECT_EQ(service.stats().queue.timeouts, 1u);
}

TEST(PredictionService, ClearProvidersRefusesWhileBusy)
{
    ServeConfig cfg;
    // Parked requests (30s age) keep the service busy deterministically.
    cfg.batching = uniformBatching(100, std::chrono::seconds(30));
    PredictionService service(cfg);
    service.registry().add("tiny", tinyPredictor(23));
    PredictRequest request;
    request.model = "tiny";
    request.region = RegionSpec{0, 0, 0, 1};
    request.params = UarchParams::armN1();
    auto pending = service.submit(request);
    EXPECT_EQ(service.clearProviders(), ServeStatus::OVERLOADED);
    service.shutdown();
    EXPECT_TRUE(pending.get().ok());
    EXPECT_EQ(service.clearProviders(), ServeStatus::OK);
}

TEST(PredictionService, WarmRegionsPrimesCacheAndSavesWarmSet)
{
    ServeConfig cfg;
    cfg.batching = uniformBatching(16, std::chrono::microseconds(100));
    PredictionService service(cfg);
    service.registry().add("tiny", tinyPredictor(24));

    const std::vector<RegionSpec> regions{{2, 0, 0, 1}, {2, 0, 8, 1}};
    const std::vector<UarchParams> points{UarchParams::armN1()};
    ASSERT_EQ(service.warmRegions("tiny", regions, points),
              ServeStatus::OK);
    EXPECT_EQ(service.warmRegions("missing", regions),
              ServeStatus::UNKNOWN_MODEL);

    // The warmed (region, point) pairs answer from the cache.
    const uint64_t misses = service.stats().cache.misses;
    for (const auto &region : regions)
        (void)service.predict("tiny", region, points[0]);
    EXPECT_EQ(service.stats().cache.misses, misses);

    // Warm-set persistence round-trips into a fresh service.
    const std::string path = "test_warm_set.bin";
    EXPECT_EQ(service.saveWarmSet(path), regions.size());
    {
        PredictionService fresh(cfg);
        fresh.registry().add("tiny", tinyPredictor(24));
        EXPECT_EQ(fresh.warmFromFile("tiny", path, points),
                  ServeStatus::OK);
        const uint64_t freshMisses = fresh.stats().cache.misses;
        for (const auto &region : regions)
            (void)fresh.predict("tiny", region, points[0]);
        EXPECT_EQ(fresh.stats().cache.misses, freshMisses);
    }
    std::remove(path.c_str());
}

TEST(PredictionService, ServesMultipleModelsAndRegions)
{
    ServeConfig cfg;
    cfg.batching = uniformBatching(8, std::chrono::microseconds(100));
    PredictionService service(cfg);
    service.registry().add("a", tinyPredictor(31));
    service.registry().add("b", tinyPredictor(32));
    const UarchParams n1 = UarchParams::armN1();

    ConcordePredictor ref_a = tinyPredictor(31);
    ConcordePredictor ref_b = tinyPredictor(32);

    std::vector<std::future<double>> futures;
    std::vector<double> expected;
    for (int r = 0; r < 3; ++r) {
        const RegionSpec region{r, 0, 0, 1};
        futures.push_back(service.predictAsync("a", region, n1));
        expected.push_back(ref_a.predictCpi(region, n1));
        futures.push_back(service.predictAsync("b", region, n1));
        expected.push_back(ref_b.predictCpi(region, n1));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
        EXPECT_NEAR(futures[i].get(), expected[i],
                    1e-6 * std::max(1.0, std::abs(expected[i])));
    }
}

TEST(PredictionKey, DistinguishesRequests)
{
    const RegionSpec region{0, 0, 0, 1};
    const RegionSpec other{0, 0, 8, 1};
    const UarchParams n1 = UarchParams::armN1();
    UarchParams changed = n1;
    changed.robSize += 1;
    EXPECT_EQ(predictionKey(1, region, n1), predictionKey(1, region, n1));
    EXPECT_NE(predictionKey(1, region, n1), predictionKey(2, region, n1));
    EXPECT_NE(predictionKey(1, region, n1), predictionKey(1, other, n1));
    EXPECT_NE(predictionKey(1, region, n1),
              predictionKey(1, region, changed));
}

TEST(UarchParamsHashKey, NormalizesIrrelevantMispredictPct)
{
    UarchParams a = UarchParams::armN1();
    UarchParams b = a;
    ASSERT_EQ(a.branch.type, BranchConfig::Type::Tage);
    b.branch.simpleMispredictPct = 50;  // unused under TAGE
    EXPECT_EQ(a.hashKey(), b.hashKey());
    b.set(ParamId::BranchPredictor, 0);  // simple predictor: now it counts
    UarchParams c = b;
    c.branch.simpleMispredictPct = 10;
    EXPECT_NE(b.hashKey(), c.hashKey());
}

} // anonymous namespace
} // namespace concorde
