/**
 * @file
 * Tests for the prediction-service layer: LRU PredictionCache
 * accounting and eviction, ModelRegistry identity rules, BatchingQueue
 * flush/edge-case behavior against a mock handler, and the composed
 * PredictionService matching the scalar predictCpi path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/stopwatch.hh"
#include "core/concorde.hh"
#include "ml/mlp.hh"
#include "serve/prediction_service.hh"

namespace concorde
{
namespace
{

using namespace concorde::serve;

// ---- PredictionCache ----

TEST(PredictionCache, HitMissAccounting)
{
    PredictionCache cache(4);
    double value = 0.0;
    EXPECT_FALSE(cache.lookup(1, value));
    cache.insert(1, 2.5);
    EXPECT_TRUE(cache.lookup(1, value));
    EXPECT_EQ(value, 2.5);
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_DOUBLE_EQ(stats.hitRate(), 0.5);
}

TEST(PredictionCache, EvictsLeastRecentlyUsed)
{
    PredictionCache cache(2);
    cache.insert(1, 1.0);
    cache.insert(2, 2.0);
    double value = 0.0;
    // Touch key 1 so key 2 becomes the LRU victim.
    EXPECT_TRUE(cache.lookup(1, value));
    cache.insert(3, 3.0);
    EXPECT_TRUE(cache.lookup(1, value));
    EXPECT_FALSE(cache.lookup(2, value));
    EXPECT_TRUE(cache.lookup(3, value));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(PredictionCache, InsertRefreshesExistingKey)
{
    PredictionCache cache(2);
    cache.insert(1, 1.0);
    cache.insert(2, 2.0);
    cache.insert(1, 1.5);    // refresh, not a new entry
    cache.insert(3, 3.0);    // evicts 2, not 1
    double value = 0.0;
    EXPECT_TRUE(cache.lookup(1, value));
    EXPECT_EQ(value, 1.5);
    EXPECT_FALSE(cache.lookup(2, value));
}

TEST(PredictionCache, ZeroCapacityDisablesCaching)
{
    PredictionCache cache(0);
    cache.insert(1, 1.0);
    double value = 0.0;
    EXPECT_FALSE(cache.lookup(1, value));
    EXPECT_EQ(cache.stats().entries, 0u);
}

// ---- ModelRegistry ----

/** Tiny untrained predictor over a shrunken feature space. */
ConcordePredictor
tinyPredictor(uint64_t seed)
{
    FeatureConfig cfg;
    cfg.numPercentiles = 5;
    cfg.robSweep = {4, 64};
    cfg.latencyRobSizes = {4, 64};
    const FeatureLayout layout(cfg);
    Mlp net({layout.dim(), 16, 1}, seed);
    std::vector<float> mean(layout.dim(), 0.0f);
    std::vector<float> stdev(layout.dim(), 1.0f);
    TrainedModel model(std::move(net), std::move(mean), std::move(stdev),
                       {});
    return ConcordePredictor(std::move(model), cfg);
}

TEST(ModelRegistry, AddGetRemove)
{
    ModelRegistry registry;
    EXPECT_FALSE(registry.get("m").valid());
    registry.add("m", tinyPredictor(1));
    registry.add("other", tinyPredictor(2));
    EXPECT_TRUE(registry.get("m").valid());
    EXPECT_EQ(registry.size(), 2u);
    EXPECT_EQ(registry.names(),
              (std::vector<std::string>{"m", "other"}));
    EXPECT_TRUE(registry.remove("m"));
    EXPECT_FALSE(registry.remove("m"));
    EXPECT_FALSE(registry.get("m").valid());
}

TEST(ModelRegistry, ReplacementBumpsIdAndKeepsOldAlive)
{
    ModelRegistry registry;
    const ModelHandle first = registry.add("m", tinyPredictor(3));
    const ModelHandle second = registry.add("m", tinyPredictor(4));
    EXPECT_NE(first.id, second.id);
    // The first handle's predictor survives replacement (shared_ptr).
    EXPECT_TRUE(first.predictor != nullptr);
    EXPECT_NE(first.predictor.get(), second.predictor.get());
    // Cache keys must differ across registrations of the same name.
    const RegionSpec region{0, 0, 0, 1};
    const UarchParams n1 = UarchParams::armN1();
    EXPECT_NE(predictionKey(first.id, region, n1),
              predictionKey(second.id, region, n1));
}

// ---- BatchingQueue (mock handler) ----

/** Handler that answers each request with its ROB size. */
BatchingQueue::BatchFn
robSizeHandler(std::atomic<int> *batches = nullptr)
{
    return [batches](const std::vector<PredictionRequest> &batch) {
        if (batches)
            ++*batches;
        std::vector<double> out;
        out.reserve(batch.size());
        for (const auto &request : batch)
            out.push_back(static_cast<double>(request.params.robSize));
        return out;
    };
}

PredictionRequest
requestWithRob(int rob)
{
    PredictionRequest request;
    request.params.robSize = rob;
    request.key = request.params.hashKey();
    return request;
}

TEST(BatchingQueue, FlushOnDeadlineWithSingleRequest)
{
    BatchingConfig cfg;
    cfg.maxBatch = 100;     // never reached
    cfg.maxDelay = std::chrono::microseconds(2000);
    BatchingQueue queue(cfg, robSizeHandler());
    Stopwatch t;
    auto future = queue.submit(requestWithRob(42));
    EXPECT_EQ(future.get(), 42.0);
    // The flush had to come from the deadline, well before any
    // size-based trigger could fire.
    const QueueStats stats = queue.stats();
    EXPECT_EQ(stats.submitted, 1u);
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(stats.flushOnDeadline, 1u);
    ASSERT_GT(stats.batchSizeCounts.size(), 1u);
    EXPECT_EQ(stats.batchSizeCounts[1], 1u);
}

TEST(BatchingQueue, FlushOnMaxBatchBeforeDeadline)
{
    BatchingConfig cfg;
    cfg.maxBatch = 8;
    cfg.maxDelay = std::chrono::seconds(30);    // deadline unreachable
    BatchingQueue queue(cfg, robSizeHandler());
    std::vector<std::future<double>> futures;
    Stopwatch t;
    for (int i = 0; i < 8; ++i)
        futures.push_back(queue.submit(requestWithRob(i + 1)));
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(futures[i].get(), i + 1.0);
    // Completed despite the 30s deadline => the size trigger flushed.
    EXPECT_LT(t.seconds(), 10.0);
    EXPECT_GE(queue.stats().flushOnSize, 1u);
}

TEST(BatchingQueue, ConcurrentSubmittersExceedPoolSize)
{
    ThreadPool pool(1);
    BatchingConfig cfg;
    cfg.maxBatch = 16;
    cfg.maxDelay = std::chrono::microseconds(200);
    std::atomic<int> batches{0};
    BatchingQueue queue(cfg, robSizeHandler(&batches), &pool);
    constexpr int kSubmitters = 6;      // > pool size of 1
    constexpr int kPerThread = 80;
    std::vector<std::thread> submitters;
    std::atomic<int> failures{0};
    for (int t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&, t]() {
            std::vector<std::future<double>> futures;
            std::vector<int> expect;
            for (int i = 0; i < kPerThread; ++i) {
                const int rob = 1 + t * kPerThread + i;
                expect.push_back(rob);
                futures.push_back(queue.submit(requestWithRob(rob)));
            }
            for (int i = 0; i < kPerThread; ++i) {
                if (futures[i].get() != expect[i])
                    ++failures;
            }
        });
    }
    for (auto &t : submitters)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    const QueueStats stats = queue.stats();
    EXPECT_EQ(stats.submitted,
              static_cast<uint64_t>(kSubmitters * kPerThread));
    EXPECT_GE(batches.load(), 1);
    // Every submitted request was dispatched in exactly one batch.
    uint64_t dispatched = 0;
    for (size_t s = 0; s < stats.batchSizeCounts.size(); ++s)
        dispatched += s * stats.batchSizeCounts[s];
    EXPECT_EQ(dispatched, stats.submitted);
}

TEST(BatchingQueue, HandlerExceptionReachesEveryFuture)
{
    BatchingConfig cfg;
    cfg.maxBatch = 4;
    cfg.maxDelay = std::chrono::microseconds(100);
    BatchingQueue queue(cfg, [](const std::vector<PredictionRequest> &)
                        -> std::vector<double> {
        throw std::runtime_error("model exploded");
    });
    std::vector<std::future<double>> futures;
    for (int i = 0; i < 4; ++i)
        futures.push_back(queue.submit(requestWithRob(i + 1)));
    for (auto &f : futures)
        EXPECT_THROW(f.get(), std::runtime_error);
    // The queue survives a failing batch.
    EXPECT_EQ(queue.stats().batches, 1u);
}

TEST(BatchingQueue, WrongResultCountIsAnError)
{
    BatchingConfig cfg;
    cfg.maxBatch = 2;
    cfg.maxDelay = std::chrono::microseconds(100);
    BatchingQueue queue(cfg, [](const std::vector<PredictionRequest> &) {
        return std::vector<double>{1.0};    // short by one
    });
    auto a = queue.submit(requestWithRob(1));
    auto b = queue.submit(requestWithRob(2));
    EXPECT_THROW(a.get(), std::runtime_error);
    EXPECT_THROW(b.get(), std::runtime_error);
}

TEST(BatchingQueue, ShutdownFlushesPendingAndRejectsNewWork)
{
    BatchingConfig cfg;
    cfg.maxBatch = 100;
    cfg.maxDelay = std::chrono::seconds(30);
    BatchingQueue queue(cfg, robSizeHandler());
    std::vector<std::future<double>> futures;
    for (int i = 0; i < 3; ++i)
        futures.push_back(queue.submit(requestWithRob(i + 1)));
    queue.shutdown();
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(futures[i].get(), i + 1.0);
    EXPECT_GE(queue.stats().flushOnShutdown, 1u);
    EXPECT_THROW(queue.submit(requestWithRob(9)), std::runtime_error);
}

TEST(BatchingQueue, RejectsBrokenConfig)
{
    BatchingConfig cfg;
    cfg.maxBatch = 0;
    EXPECT_THROW(BatchingQueue(cfg, robSizeHandler()),
                 std::invalid_argument);
    cfg.maxBatch = 1;
    EXPECT_THROW(BatchingQueue(cfg, nullptr), std::invalid_argument);
}

// ---- PredictionService end to end ----

TEST(PredictionService, MatchesScalarPredictorAndCountsCacheTraffic)
{
    ServeConfig cfg;
    cfg.batching.maxBatch = 16;
    cfg.batching.maxDelay = std::chrono::microseconds(200);
    cfg.cacheCapacity = 1024;
    cfg.poolThreads = 2;
    PredictionService service(cfg);
    service.registry().add("tiny", tinyPredictor(11));

    // An independent predictor with identical weights for the scalar
    // reference path.
    ConcordePredictor reference = tinyPredictor(11);
    const RegionSpec region{0, 0, 0, 1};
    FeatureProvider provider(region, reference.featureConfig());

    Rng rng(12);
    std::vector<UarchParams> points;
    for (int i = 0; i < 40; ++i)
        points.push_back(UarchParams::sampleRandom(rng));

    std::vector<std::future<double>> futures;
    for (const auto &point : points)
        futures.push_back(service.predictAsync("tiny", region, point));
    for (size_t i = 0; i < points.size(); ++i) {
        const double scalar = reference.predictCpi(provider, points[i]);
        EXPECT_NEAR(futures[i].get(), scalar,
                    1e-6 * std::max(1.0, std::abs(scalar))) << "point " << i;
    }

    const uint64_t misses_before = service.stats().cache.misses;
    EXPECT_GE(misses_before, points.size());

    // Replay: every request must now be a cache hit, with the exact
    // same double as the first pass.
    for (size_t i = 0; i < points.size(); ++i) {
        const double replay = service.predict("tiny", region, points[i]);
        const double scalar = reference.predictCpi(provider, points[i]);
        EXPECT_NEAR(replay, scalar,
                    1e-6 * std::max(1.0, std::abs(scalar)));
    }
    const ServeStats stats = service.stats();
    EXPECT_GE(stats.cache.hits, static_cast<uint64_t>(points.size()));
    EXPECT_EQ(stats.cache.misses, misses_before);
    EXPECT_EQ(stats.queue.submitted,
              static_cast<uint64_t>(2 * points.size()));
}

TEST(PredictionService, CacheHitIsBitwiseIdentical)
{
    ServeConfig cfg;
    cfg.batching.maxBatch = 4;
    cfg.batching.maxDelay = std::chrono::microseconds(100);
    PredictionService service(cfg);
    service.registry().add("tiny", tinyPredictor(21));
    const RegionSpec region{1, 0, 0, 1};
    const UarchParams n1 = UarchParams::armN1();
    const double first = service.predict("tiny", region, n1);
    const double second = service.predict("tiny", region, n1);
    EXPECT_EQ(first, second);
    EXPECT_GE(service.stats().cache.hits, 1u);
}

TEST(PredictionService, UnknownModelThrows)
{
    PredictionService service;
    const RegionSpec region{0, 0, 0, 1};
    EXPECT_THROW(service.predictAsync("missing", region,
                                      UarchParams::armN1()),
                 std::invalid_argument);
}

TEST(PredictionService, ServesMultipleModelsAndRegions)
{
    ServeConfig cfg;
    cfg.batching.maxBatch = 8;
    cfg.batching.maxDelay = std::chrono::microseconds(100);
    PredictionService service(cfg);
    service.registry().add("a", tinyPredictor(31));
    service.registry().add("b", tinyPredictor(32));
    const UarchParams n1 = UarchParams::armN1();

    ConcordePredictor ref_a = tinyPredictor(31);
    ConcordePredictor ref_b = tinyPredictor(32);

    std::vector<std::future<double>> futures;
    std::vector<double> expected;
    for (int r = 0; r < 3; ++r) {
        const RegionSpec region{r, 0, 0, 1};
        futures.push_back(service.predictAsync("a", region, n1));
        expected.push_back(ref_a.predictCpi(region, n1));
        futures.push_back(service.predictAsync("b", region, n1));
        expected.push_back(ref_b.predictCpi(region, n1));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
        EXPECT_NEAR(futures[i].get(), expected[i],
                    1e-6 * std::max(1.0, std::abs(expected[i])));
    }
}

TEST(PredictionKey, DistinguishesRequests)
{
    const RegionSpec region{0, 0, 0, 1};
    const RegionSpec other{0, 0, 8, 1};
    const UarchParams n1 = UarchParams::armN1();
    UarchParams changed = n1;
    changed.robSize += 1;
    EXPECT_EQ(predictionKey(1, region, n1), predictionKey(1, region, n1));
    EXPECT_NE(predictionKey(1, region, n1), predictionKey(2, region, n1));
    EXPECT_NE(predictionKey(1, region, n1), predictionKey(1, other, n1));
    EXPECT_NE(predictionKey(1, region, n1),
              predictionKey(1, region, changed));
}

TEST(UarchParamsHashKey, NormalizesIrrelevantMispredictPct)
{
    UarchParams a = UarchParams::armN1();
    UarchParams b = a;
    ASSERT_EQ(a.branch.type, BranchConfig::Type::Tage);
    b.branch.simpleMispredictPct = 50;  // unused under TAGE
    EXPECT_EQ(a.hashKey(), b.hashKey());
    b.set(ParamId::BranchPredictor, 0);  // simple predictor: now it counts
    UarchParams c = b;
    c.branch.simpleMispredictPct = 10;
    EXPECT_NE(b.hashKey(), c.hashKey());
}

} // anonymous namespace
} // namespace concorde
