/**
 * @file
 * Tests for the end-to-end pipeline layer: span sharding, the
 * boundary-stitching invariant of AnalyzerCarryState and the memory
 * state machine, bitwise identity across execution modes (scalar,
 * sharded, service-backed), and the FeatureProvider thread-safety
 * contract hammered from the ThreadPool.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <mutex>

#include "core/artifacts.hh"
#include "golden_harness.hh"
#include "pipeline/analysis_pipeline.hh"
#include "serve/prediction_service.hh"
#include "trace/workloads.hh"

using namespace concorde;
using pipeline::AnalysisPipeline;
using pipeline::ExecMode;
using pipeline::PipelineConfig;
using pipeline::PipelineResult;
using pipeline::StateMode;

namespace
{

/** Shrunken feature space so each assemble costs milliseconds. */
FeatureConfig
tinyConfig()
{
    return golden::smallFeatures();
}

ConcordePredictor
tinyPredictor(uint64_t seed)
{
    const FeatureConfig cfg = tinyConfig();
    return ConcordePredictor(artifacts::untrainedModel(cfg, seed, {16}),
                             cfg);
}

TraceSpan
testSpan(uint64_t num_chunks, const char *code = "S7")
{
    TraceSpan span;
    span.programId = programIdByCode(code);
    span.traceId = 0;
    span.startChunk = 16;
    span.numChunks = num_chunks;
    return span;
}

} // anonymous namespace

// ---- shardSpan / aggregateCpi ----

TEST(ShardSpan, TilesSpanExactly)
{
    TraceSpan span = testSpan(10);
    const auto regions = shardSpan(span, 4);
    ASSERT_EQ(regions.size(), 3u);
    uint64_t at = span.startChunk;
    uint64_t chunks = 0;
    for (const auto &region : regions) {
        EXPECT_EQ(region.programId, span.programId);
        EXPECT_EQ(region.traceId, span.traceId);
        EXPECT_EQ(region.startChunk, at);
        at += region.numChunks;
        chunks += region.numChunks;
    }
    EXPECT_EQ(chunks, span.numChunks);
    EXPECT_EQ(regions.back().numChunks, 2u);    // remainder shard
}

TEST(ShardSpan, SingleShardWhenRegionCoversSpan)
{
    const auto regions = shardSpan(testSpan(4), 8);
    ASSERT_EQ(regions.size(), 1u);
    EXPECT_EQ(regions[0].numChunks, 4u);
}

TEST(AggregateCpi, WeightsByInstructionCount)
{
    TraceSpan span = testSpan(3);
    const auto regions = shardSpan(span, 2);    // 2 chunks + 1 chunk
    ASSERT_EQ(regions.size(), 2u);
    uint64_t instructions = 0;
    const double cpi =
        pipeline::aggregateCpi(regions, {1.0, 4.0}, &instructions);
    EXPECT_EQ(instructions, span.numInstructions());
    EXPECT_DOUBLE_EQ(cpi, (1.0 * 2.0 + 4.0 * 1.0) / 3.0);
}

// ---- boundary stitching ----

namespace
{

struct FullAnalyses
{
    DSideAnalysis dside;
    ISideAnalysis iside;
    BranchAnalysis branches;
};

/** Carried-state analysis of `instrs` split at the given chunk counts. */
FullAnalyses
analyzeWithSplits(const TraceSpan &span,
                  const std::vector<Instruction> &warmup,
                  const std::vector<Instruction> &instrs,
                  const UarchParams &params,
                  const std::vector<size_t> &split_sizes)
{
    AnalyzerCarryState carry(
        params.memory, params.branch,
        branchSeedFor(span.programId, span.traceId, span.startChunk));
    carry.warm(warmup);

    FullAnalyses out;
    size_t at = 0;
    for (size_t size : split_sizes) {
        const std::vector<Instruction> shard(
            instrs.begin() + at, instrs.begin() + at + size);
        at += size;
        const DSideAnalysis d = carry.analyzeDside(shard);
        const ISideAnalysis is = carry.analyzeIside(shard);
        const BranchAnalysis b = carry.analyzeBranches(shard);
        out.dside.execLat.insert(out.dside.execLat.end(),
                                 d.execLat.begin(), d.execLat.end());
        out.dside.loadLevel.insert(out.dside.loadLevel.end(),
                                   d.loadLevel.begin(), d.loadLevel.end());
        out.iside.newLine.insert(out.iside.newLine.end(),
                                 is.newLine.begin(), is.newLine.end());
        out.iside.lineLat.insert(out.iside.lineLat.end(),
                                 is.lineLat.begin(), is.lineLat.end());
        out.branches.mispredict.insert(out.branches.mispredict.end(),
                                       b.mispredict.begin(),
                                       b.mispredict.end());
        out.branches.numBranches += b.numBranches;
        out.branches.numMispredicts += b.numMispredicts;
    }
    EXPECT_EQ(at, instrs.size());
    return out;
}

void
expectAnalysesEqual(const FullAnalyses &a, const FullAnalyses &b)
{
    EXPECT_EQ(a.dside.execLat, b.dside.execLat);
    EXPECT_EQ(a.dside.loadLevel, b.dside.loadLevel);
    EXPECT_EQ(a.iside.newLine, b.iside.newLine);
    EXPECT_EQ(a.iside.lineLat, b.iside.lineLat);
    EXPECT_EQ(a.branches.mispredict, b.branches.mispredict);
    EXPECT_EQ(a.branches.numBranches, b.branches.numBranches);
    EXPECT_EQ(a.branches.numMispredicts, b.branches.numMispredicts);
}

} // anonymous namespace

TEST(BoundaryStitching, EveryChunkSplitMatchesUnsplitRun)
{
    const TraceSpan span = testSpan(6);
    const ProgramModel &model = programModel(span.programId);

    RegionSpec whole;
    whole.programId = span.programId;
    whole.traceId = span.traceId;
    whole.startChunk = span.startChunk;
    whole.numChunks = static_cast<uint32_t>(span.numChunks);
    const auto instrs = model.generateRegion(whole);

    RegionSpec warm = whole;
    warm.numChunks = 2;
    warm.startChunk = span.startChunk - 2;
    const auto warmup = model.generateRegion(warm);

    // One TAGE/prefetch-off point and one Simple/prefetch-on point, so
    // both predictor kinds and the prefetcher path cross boundaries.
    UarchParams tage_point = UarchParams::armN1();
    UarchParams simple_point = UarchParams::armN1();
    simple_point.branch.type = BranchConfig::Type::Simple;
    simple_point.branch.simpleMispredictPct = 10;
    simple_point.memory.prefetchDegree = 4;

    for (const UarchParams &params : {tage_point, simple_point}) {
        const FullAnalyses unsplit = analyzeWithSplits(
            span, warmup, instrs, params, {instrs.size()});
        for (uint64_t split = 1; split < span.numChunks; ++split) {
            const size_t head = split * kChunkLen;
            const FullAnalyses stitched = analyzeWithSplits(
                span, warmup, instrs, params,
                {head, instrs.size() - head});
            expectAnalysesEqual(stitched, unsplit);
        }
        // Finest split: one shard per chunk.
        const FullAnalyses per_chunk = analyzeWithSplits(
            span, warmup, instrs, params,
            std::vector<size_t>(span.numChunks, kChunkLen));
        expectAnalysesEqual(per_chunk, unsplit);
    }
}

TEST(BoundaryStitching, CarryMatchesRegionAnalysisConvention)
{
    // A single-shard carried pass is exactly RegionAnalysis's
    // warmup-then-region analysis of the same span.
    const TraceSpan span = testSpan(4);
    const uint32_t warmup_chunks = 3;
    RegionSpec whole;
    whole.programId = span.programId;
    whole.traceId = span.traceId;
    whole.startChunk = span.startChunk;
    whole.numChunks = static_cast<uint32_t>(span.numChunks);

    RegionAnalysis reference(whole, warmup_chunks);
    const UarchParams params = UarchParams::armN1();
    const DSideAnalysis &ref_d = reference.dside(params.memory);
    const ISideAnalysis &ref_i = reference.iside(params.memory);
    const BranchAnalysis &ref_b = reference.branches(params.branch);

    const FullAnalyses carried = analyzeWithSplits(
        span, reference.warmupInstrs(), reference.instrs(), params,
        {reference.instrs().size()});
    EXPECT_EQ(carried.dside.execLat, ref_d.execLat);
    EXPECT_EQ(carried.dside.loadLevel, ref_d.loadLevel);
    EXPECT_EQ(carried.iside.newLine, ref_i.newLine);
    EXPECT_EQ(carried.iside.lineLat, ref_i.lineLat);
    EXPECT_EQ(carried.branches.mispredict, ref_b.mispredict);
    EXPECT_EQ(carried.branches.numBranches, ref_b.numBranches);
}

TEST(MemoryStateMachineSnapshot, SplitRunMatchesUnsplitRun)
{
    RegionSpec spec;
    spec.programId = programIdByCode("S1");
    spec.traceId = 0;
    spec.startChunk = 8;
    spec.numChunks = 2;
    RegionAnalysis analysis(spec, 2);
    const UarchParams params = UarchParams::armN1();
    const auto &exec_lat = analysis.dside(params.memory).execLat;
    const auto &instrs = analysis.instrs();

    // Reference: one unsplit model run with a synthetic issue schedule.
    MemoryStateMachine full(analysis.loadIndex(), exec_lat);
    std::vector<uint64_t> reference(instrs.size());
    for (size_t i = 0; i < instrs.size(); ++i)
        reference[i] = full.respCycle(i / 2, i, instrs[i]);

    for (size_t split : {size_t(1), instrs.size() / 3,
                         instrs.size() / 2, instrs.size() - 1}) {
        MemoryStateMachine head(analysis.loadIndex(), exec_lat);
        for (size_t i = 0; i < split; ++i)
            EXPECT_EQ(head.respCycle(i / 2, i, instrs[i]), reference[i]);

        // Resume the suffix on a fresh machine from the snapshot.
        const MemoryStateMachine::Snapshot state = head.snapshot();
        MemoryStateMachine tail(analysis.loadIndex(), exec_lat);
        tail.restore(state);
        for (size_t i = split; i < instrs.size(); ++i)
            EXPECT_EQ(tail.respCycle(i / 2, i, instrs[i]), reference[i]);
    }
}

// ---- execution-mode identity ----

namespace
{

void
expectResultsIdentical(const PipelineResult &a, const PipelineResult &b)
{
    ASSERT_EQ(a.regionCpi.size(), b.regionCpi.size());
    for (size_t i = 0; i < a.regionCpi.size(); ++i)
        EXPECT_EQ(a.regionCpi[i], b.regionCpi[i]) << "region " << i;
    EXPECT_EQ(a.programCpi, b.programCpi);
    EXPECT_EQ(a.instructions, b.instructions);
}

PipelineResult
runPipeline(const ConcordePredictor &predictor, const TraceSpan &span,
            const UarchParams &params, ExecMode mode, StateMode state,
            size_t threads, bool keep_features = false)
{
    PipelineConfig config;
    config.regionChunks = 1;
    config.warmupChunks = 2;
    config.mode = mode;
    config.state = state;
    config.threads = threads;
    config.keepFeatures = keep_features;
    AnalysisPipeline pipe(predictor, config);
    return pipe.run(span, params);
}

} // anonymous namespace

TEST(PipelineModes, ShardedMatchesScalarBitwise)
{
    const ConcordePredictor predictor = tinyPredictor(7);
    const TraceSpan span = testSpan(4);
    const UarchParams params = UarchParams::armN1();

    for (StateMode state : {StateMode::Independent, StateMode::Carry}) {
        const PipelineResult scalar = runPipeline(
            predictor, span, params, ExecMode::Scalar, state, 1, true);
        const PipelineResult sharded = runPipeline(
            predictor, span, params, ExecMode::Sharded, state, 3, true);
        ASSERT_EQ(scalar.regionCpi.size(), 4u);
        expectResultsIdentical(scalar, sharded);
        // The assembled feature matrices agree bitwise too.
        EXPECT_EQ(scalar.features, sharded.features);
    }
}

TEST(PipelineModes, ThreadCountInvariance)
{
    const ConcordePredictor predictor = tinyPredictor(8);
    const TraceSpan span = testSpan(3);
    const UarchParams params = UarchParams::armN1();
    for (StateMode state : {StateMode::Independent, StateMode::Carry}) {
        const PipelineResult one = runPipeline(
            predictor, span, params, ExecMode::Sharded, state, 1);
        const PipelineResult four = runPipeline(
            predictor, span, params, ExecMode::Sharded, state, 4);
        expectResultsIdentical(one, four);
    }
}

TEST(PipelineModes, IndependentRegionsMatchDirectPredictCpi)
{
    // Independent-state regions are the plain per-region path: the
    // pipeline must reproduce predictCpi on each RegionSpec bitwise.
    const ConcordePredictor predictor = tinyPredictor(9);
    const TraceSpan span = testSpan(3);
    const UarchParams params = UarchParams::armN1();
    const PipelineResult result = runPipeline(
        predictor, span, params, ExecMode::Sharded,
        StateMode::Independent, 2);
    ASSERT_EQ(result.regions.size(), 3u);
    for (size_t i = 0; i < result.regions.size(); ++i) {
        FeatureProvider provider(result.regions[i],
                                 predictor.featureConfig(), 2);
        EXPECT_EQ(result.regionCpi[i],
                  predictor.predictCpi(provider, params));
    }
}

TEST(PipelineModes, CarrySingleShardMatchesIndependent)
{
    // With one shard covering the whole span, Carry's stitch pass is
    // exactly the Independent warmup convention.
    const ConcordePredictor predictor = tinyPredictor(10);
    const TraceSpan span = testSpan(2);
    const UarchParams params = UarchParams::armN1();
    PipelineConfig config;
    config.regionChunks = static_cast<uint32_t>(span.numChunks);
    config.warmupChunks = 2;
    config.mode = ExecMode::Scalar;

    config.state = StateMode::Independent;
    AnalysisPipeline independent(predictor, config);
    config.state = StateMode::Carry;
    AnalysisPipeline carry(predictor, config);
    expectResultsIdentical(independent.run(span, params),
                           carry.run(span, params));
}

TEST(PipelineModes, ServiceEndpointMatchesScalarPipeline)
{
    const FeatureConfig cfg = tinyConfig();
    const ConcordePredictor predictor(
        artifacts::untrainedModel(cfg, 11, {16}), cfg);
    const TraceSpan span = testSpan(4);
    const UarchParams params = UarchParams::armN1();

    // The service's per-region providers use the default warmup, so the
    // reference pipeline must too.
    PipelineConfig config;
    config.regionChunks = 2;
    config.mode = ExecMode::Scalar;
    config.state = StateMode::Independent;
    AnalysisPipeline pipe(predictor, config);
    const PipelineResult reference = pipe.run(span, params);

    serve::ServeConfig sc;
    sc.poolThreads = 2;
    serve::PredictionService service(sc);
    service.registry().add(
        "m", ConcordePredictor(artifacts::untrainedModel(cfg, 11, {16}),
                               cfg));
    const PipelineResult served =
        service.predictSpan("m", span, config.regionChunks, params);
    expectResultsIdentical(reference, served);
}

// ---- FeatureProvider thread-safety contract ----

namespace
{

std::vector<UarchParams>
hammerPoints()
{
    UarchParams big = UarchParams::armN1();
    big.robSize = 512;
    big.lqSize = 96;
    big.memory.prefetchDegree = 4;
    UarchParams simple = UarchParams::armN1();
    simple.branch.type = BranchConfig::Type::Simple;
    simple.branch.simpleMispredictPct = 3;
    return {UarchParams::armN1(), big, simple};
}

std::vector<float>
assembleAll(FeatureProvider &provider, const std::vector<UarchParams> &pts)
{
    std::vector<float> rows;
    for (const auto &params : pts)
        provider.assemble(params, rows);
    return rows;
}

} // anonymous namespace

TEST(ProviderConcurrency, ShardLocalProvidersFromPool)
{
    // Contract pattern (a): one provider per worker. Hammer the memo
    // caches of 8 independent instances from the pool; every instance
    // must reproduce the serial reference bitwise.
    const FeatureConfig cfg = tinyConfig();
    RegionSpec spec;
    spec.programId = programIdByCode("P1");
    spec.traceId = 0;
    spec.startChunk = 12;
    spec.numChunks = 1;
    const auto points = hammerPoints();

    FeatureProvider reference_provider(spec, cfg, 2);
    const std::vector<float> reference =
        assembleAll(reference_provider, points);

    ThreadPool pool(4);
    std::vector<std::future<std::vector<float>>> futures;
    for (int t = 0; t < 8; ++t) {
        futures.push_back(pool.submit([&spec, &cfg, &points] {
            FeatureProvider provider(spec, cfg, 2);
            return assembleAll(provider, points);
        }));
    }
    for (auto &future : futures)
        EXPECT_EQ(future.get(), reference);
}

TEST(ProviderConcurrency, SharedProviderSerializedByMutex)
{
    // Contract pattern (b): one shared provider behind an external
    // mutex (the PredictionService pattern). The warm memo caches must
    // serve every thread the same bits.
    const FeatureConfig cfg = tinyConfig();
    RegionSpec spec;
    spec.programId = programIdByCode("C1");
    spec.traceId = 0;
    spec.startChunk = 12;
    spec.numChunks = 1;
    const auto points = hammerPoints();

    FeatureProvider shared(spec, cfg, 2);
    const std::vector<float> reference = assembleAll(shared, points);

    std::mutex mtx;
    ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < 8; ++t) {
        futures.push_back(pool.submit([&shared, &mtx, &points,
                                       &reference] {
            for (const auto &params : points) {
                std::vector<float> row;
                {
                    std::lock_guard<std::mutex> lock(mtx);
                    shared.assemble(params, row);
                }
                (void)row;
            }
            std::vector<float> all;
            {
                std::lock_guard<std::mutex> lock(mtx);
                for (const auto &params : points)
                    shared.assemble(params, all);
            }
            EXPECT_EQ(all, reference);
        }));
    }
    for (auto &future : futures)
        future.get();
}
