/**
 * @file
 * Tests for the fused cold analysis path: the columnar trace layout, the
 * single-sweep d/i/branch analysis (RegionAnalysis::analyzeAll and
 * AnalyzerCarryState::analyzeShard), and the multi-size ROB-model sweep
 * feeding FeatureProvider's batched cache fill. Every fused path must be
 * bitwise-identical to its legacy per-side / per-size counterpart.
 */

#include <gtest/gtest.h>

#include "analysis/trace_analyzer.hh"
#include "analytical/feature_provider.hh"
#include "analytical/rob_model.hh"
#include "trace/program_model.hh"
#include "trace/workloads.hh"
#include "uarch/params.hh"

namespace concorde
{
namespace
{

RegionSpec
testRegion(const char *code, uint64_t start_chunk, uint32_t num_chunks)
{
    RegionSpec spec;
    spec.programId = programIdByCode(code);
    spec.traceId = 0;
    spec.startChunk = start_chunk;
    spec.numChunks = num_chunks;
    return spec;
}

void
expectStatsEqual(const HierarchyStats &a, const HierarchyStats &b)
{
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.llcHits, b.llcHits);
    EXPECT_EQ(a.ramAccesses, b.ramAccesses);
    EXPECT_EQ(a.prefetchesIssued, b.prefetchesIssued);
    EXPECT_EQ(a.writebacks, b.writebacks);
}

void
expectShardEqual(const ShardAnalyses &fused, const DSideAnalysis &d,
                 const ISideAnalysis &i, const BranchAnalysis &b)
{
    EXPECT_EQ(fused.dside.execLat, d.execLat);
    EXPECT_EQ(fused.dside.loadLevel, d.loadLevel);
    expectStatsEqual(fused.dside.stats, d.stats);
    EXPECT_EQ(fused.iside.newLine, i.newLine);
    EXPECT_EQ(fused.iside.lineLat, i.lineLat);
    expectStatsEqual(fused.iside.stats, i.stats);
    EXPECT_EQ(fused.branches.mispredict, b.mispredict);
    EXPECT_EQ(fused.branches.numBranches, b.numBranches);
    EXPECT_EQ(fused.branches.numMispredicts, b.numMispredicts);
}

} // anonymous namespace

// The fused carried-state sweep must reproduce the three legacy per-side
// passes shard by shard, across programs, configurations, and carried
// hierarchy/predictor state (including the warmup replay).
TEST(FusedCarryState, AnalyzeShardMatchesPerSidePasses)
{
    MemoryConfig small;
    small.l1dKb = 16;
    small.l1iKb = 16;
    small.l2Kb = 512;
    small.prefetchDegree = 4;

    const MemoryConfig configs[] = {MemoryConfig{}, small};
    const char *programs[] = {"S7", "P1"};

    for (const char *code : programs) {
        for (const MemoryConfig &mem : configs) {
            const uint64_t start = 16;
            const ProgramModel &model =
                programModel(programIdByCode(code));
            const TraceColumns warm = model.generateRegionColumns(
                testRegion(code, start - 1, 1));

            BranchConfig branch;    // TAGE: carried predictor state
            const uint64_t seed =
                branchSeedFor(programIdByCode(code), 0, start);
            AnalyzerCarryState fused(mem, branch, seed);
            AnalyzerCarryState legacy(mem, branch, seed);
            fused.warm(warm);
            legacy.warm(warm.toInstructions());

            for (int shard_i = 0; shard_i < 3; ++shard_i) {
                const TraceColumns shard = model.generateRegionColumns(
                    testRegion(code, start + shard_i, 1));
                const ShardAnalyses all = fused.analyzeShard(shard);
                const std::vector<Instruction> rows =
                    shard.toInstructions();
                const DSideAnalysis d = legacy.analyzeDside(rows);
                const ISideAnalysis i = legacy.analyzeIside(rows);
                const BranchAnalysis b = legacy.analyzeBranches(rows);
                expectShardEqual(all, d, i, b);
            }
        }
    }
}

// analyzeAll()'s one-pass fill must memoize exactly what the three lazy
// per-side getters would have computed.
TEST(FusedRegionAnalysis, AnalyzeAllMatchesPerSideAnalyses)
{
    const RegionSpec spec = testRegion("S7", 16, 2);
    MemoryConfig mem;
    BranchConfig branch;

    RegionAnalysis fused(spec);
    RegionAnalysis legacy(spec);

    fused.analyzeAll(mem, branch);
    EXPECT_EQ(fused.numDsideAnalyses(), 1u);
    EXPECT_EQ(fused.numIsideAnalyses(), 1u);
    EXPECT_EQ(fused.numBranchAnalyses(), 1u);

    const DSideAnalysis &fd = fused.dside(mem);
    const ISideAnalysis &fi = fused.iside(mem);
    const BranchAnalysis &fb = fused.branches(branch);
    // Reading back memoized sides must not trigger new analyses.
    EXPECT_EQ(fused.numDsideAnalyses(), 1u);
    EXPECT_EQ(fused.numIsideAnalyses(), 1u);
    EXPECT_EQ(fused.numBranchAnalyses(), 1u);

    const DSideAnalysis &ld = legacy.dside(mem);
    const ISideAnalysis &li = legacy.iside(mem);
    const BranchAnalysis &lb = legacy.branches(branch);

    EXPECT_EQ(fd.execLat, ld.execLat);
    EXPECT_EQ(fd.loadLevel, ld.loadLevel);
    expectStatsEqual(fd.stats, ld.stats);
    EXPECT_EQ(fi.newLine, li.newLine);
    EXPECT_EQ(fi.lineLat, li.lineLat);
    expectStatsEqual(fi.stats, li.stats);
    EXPECT_EQ(fb.mispredict, lb.mispredict);
    EXPECT_EQ(fb.numBranches, lb.numBranches);
    EXPECT_EQ(fb.numMispredicts, lb.numMispredicts);
}

// Incremental sweep re-analysis: design points sharing a d-side, i-side,
// or branch key must share the memoized analysis instead of re-sweeping.
TEST(FusedRegionAnalysis, SweepConfigsShareSides)
{
    const RegionSpec spec = testRegion("S7", 16, 1);
    RegionAnalysis analysis(spec);

    BranchConfig tage;
    for (uint32_t l1d : {32u, 64u}) {
        for (uint32_t l1i : {32u, 64u}) {
            MemoryConfig mem;
            mem.l1dKb = l1d;
            mem.l1iKb = l1i;
            analysis.analyzeAll(mem, tage);
        }
    }
    // 4 design points -> 2 distinct d-side keys, 2 i-side keys, 1
    // predictor.
    EXPECT_EQ(analysis.numDsideAnalyses(), 2u);
    EXPECT_EQ(analysis.numIsideAnalyses(), 2u);
    EXPECT_EQ(analysis.numBranchAnalyses(), 1u);

    // A new branch config only adds a branch analysis.
    BranchConfig simple;
    simple.type = BranchConfig::Type::Simple;
    analysis.analyzeAll(MemoryConfig{}, simple);
    EXPECT_EQ(analysis.numDsideAnalyses(), 2u);
    EXPECT_EQ(analysis.numIsideAnalyses(), 2u);
    EXPECT_EQ(analysis.numBranchAnalyses(), 2u);
}

// The columnar layout must be a lossless mirror of the row layout: the
// SoA generator matches the AoS generator, and AoS<->SoA round trips.
TEST(TraceColumnsLayout, RoundTripMatchesRowGeneration)
{
    const RegionSpec spec = testRegion("P1", 7, 1);
    const ProgramModel &model = programModel(spec.programId);

    const std::vector<Instruction> rows = model.generateRegion(spec);
    const TraceColumns cols = model.generateRegionColumns(spec);
    ASSERT_EQ(cols.size(), rows.size());

    const TraceColumns from_rows = TraceColumns::fromInstructions(rows);
    EXPECT_EQ(cols.pc, from_rows.pc);
    EXPECT_EQ(cols.memAddr, from_rows.memAddr);
    EXPECT_EQ(cols.instLine, from_rows.instLine);
    EXPECT_EQ(cols.srcDep0, from_rows.srcDep0);
    EXPECT_EQ(cols.srcDep1, from_rows.srcDep1);
    EXPECT_EQ(cols.memDep, from_rows.memDep);
    EXPECT_EQ(cols.type, from_rows.type);
    EXPECT_EQ(cols.branchKind, from_rows.branchKind);
    EXPECT_EQ(cols.taken, from_rows.taken);
    EXPECT_EQ(cols.targetId, from_rows.targetId);

    // Derived line index matches its definition.
    for (size_t i = 0; i < cols.size(); ++i)
        ASSERT_EQ(cols.instLine[i], cols.pc[i] >> 6);

    const std::vector<Instruction> back = cols.toInstructions();
    const TraceColumns again = TraceColumns::fromInstructions(back);
    EXPECT_EQ(again.pc, cols.pc);
    EXPECT_EQ(again.memAddr, cols.memAddr);
    EXPECT_EQ(again.type, cols.type);
    EXPECT_EQ(again.taken, cols.taken);
}

// The multi-size ROB sweep must be bitwise-identical to back-to-back
// single-size runs, including the optional stage-latency collection.
TEST(RobSweep, MatchesPerSizeRuns)
{
    const RegionSpec spec = testRegion("S7", 16, 1);
    RegionAnalysis analysis(spec);
    const MemoryConfig mem;
    const DSideAnalysis &dside = analysis.dside(mem);

    const std::vector<RobSweepRequest> requests = {
        {1, true}, {4, false}, {16, true}, {64, false},
        {200, false}, {1024, true},
    };
    const std::vector<RobModelResult> sweep = runRobModelSweep(
        analysis.regionColumns(), analysis.loadIndex(), dside.execLat,
        requests, kDefaultWindowK);
    ASSERT_EQ(sweep.size(), requests.size());

    for (size_t i = 0; i < requests.size(); ++i) {
        const RobModelResult single = runRobModel(
            analysis.regionColumns(), analysis.loadIndex(), dside.execLat,
            requests[i].robSize, kDefaultWindowK,
            requests[i].collectLatencies);
        EXPECT_EQ(sweep[i].windowThroughput, single.windowThroughput);
        EXPECT_EQ(sweep[i].overallIpc, single.overallIpc);
        EXPECT_EQ(sweep[i].issueLat, single.issueLat);
        EXPECT_EQ(sweep[i].execLat, single.execLat);
        EXPECT_EQ(sweep[i].commitLat, single.commitLat);
        if (!requests[i].collectLatencies) {
            EXPECT_TRUE(sweep[i].issueLat.empty());
        }
    }
}

// FeatureProvider's batched cache fill: one cold assemble populates every
// entry a design point touches, so the warm repeat runs zero models and
// produces a bitwise-identical feature vector; a genuinely new ROB size
// falls back to exactly one extra run.
TEST(RobSweep, EnsureRobEntriesMemoizesAcrossAssembles)
{
    FeatureConfig cfg;
    cfg.numPercentiles = 5;
    cfg.robSweep = {4, 64};
    cfg.latencyRobSizes = {4, 64};

    FeatureProvider provider(testRegion("S7", 16, 1), cfg);
    const UarchParams params = UarchParams::armN1();

    std::vector<float> cold;
    provider.assemble(params, cold);
    const size_t cold_runs = provider.modelRuns();
    EXPECT_GT(cold_runs, 0u);

    std::vector<float> warmed;
    provider.assemble(params, warmed);
    EXPECT_EQ(provider.modelRuns(), cold_runs);
    EXPECT_EQ(cold, warmed);

    // A ROB size outside every configured list costs exactly one more
    // model run (the per-size fallback path).
    UarchParams bigger = params;
    bigger.robSize = 200;
    std::vector<float> other;
    provider.assemble(bigger, other);
    EXPECT_EQ(provider.modelRuns(), cold_runs + 1);
}

} // namespace concorde
